package storage

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/clock"
	"repro/internal/ftl"
	"repro/internal/obs"
	"repro/internal/record"
)

// svStripes is the number of metadata shards. Writes and reads on keys in
// different stripes never share a lock, so one slow flash program cannot
// stall unrelated keys.
const svStripes = 64

// svStripe is one metadata shard: the key→LBA table and version cache for
// the keys that hash here, plus per-key in-flight write tracking.
type svStripe struct {
	mu      sync.Mutex
	done    *sync.Cond            // signalled when a write finishes
	lbas    map[string]int        // key -> owned LBA
	latest  map[string]memVersion // ts + tombstone cache (value lives on flash)
	writing map[string]bool       // keys with a flash program in flight
}

// SingleVersion is a key-value store over the generic single-version FTL —
// the "SFTL" configuration of Figure 6. Each key owns one logical block;
// every put overwrites it in place (the FTL remaps physically). Because only
// the newest version exists, a Get at a snapshot older than the current
// version fails with ErrSnapshotUnavailable, which forces the transaction
// layer to abort tardy read-only transactions — exactly the effect the
// multi-version FTLs eliminate.
//
// Metadata is striped svStripes ways and never held across flash I/O:
// writers publish the new version, release the stripe, program the page,
// then mark the write complete (or roll the metadata back on error). Writes
// to the *same* key serialize on the in-flight marker so programs cannot
// land on media out of version order; everything else proceeds in parallel
// across the device's channels.
type SingleVersion struct {
	f       *ftl.FTL
	stripes [svStripes]svStripe

	allocMu  sync.Mutex
	freeLBAs []int

	metrics atomic.Pointer[svMetrics]
}

// svMetrics feeds the striped store's contention observability.
type svMetrics struct {
	stripeWaits *obs.Counter // same-key waits behind an in-flight program
	inflight    *obs.Gauge   // programs currently in flight
}

// NewSingleVersion builds the store over a fresh FTL.
func NewSingleVersion(f *ftl.FTL) *SingleVersion {
	s := &SingleVersion{f: f}
	for i := range s.stripes {
		st := &s.stripes[i]
		st.done = sync.NewCond(&st.mu)
		st.lbas = make(map[string]int)
		st.latest = make(map[string]memVersion)
		st.writing = make(map[string]bool)
	}
	for i := f.NumLBAs() - 1; i >= 0; i-- {
		s.freeLBAs = append(s.freeLBAs, i)
	}
	return s
}

var _ Backend = (*SingleVersion)(nil)

func (s *SingleVersion) stripe(key []byte) *svStripe {
	h := fnv.New32a()
	h.Write(key)
	return &s.stripes[h.Sum32()%svStripes]
}

func (s *SingleVersion) allocLBA() (int, bool) {
	s.allocMu.Lock()
	defer s.allocMu.Unlock()
	if len(s.freeLBAs) == 0 {
		return 0, false
	}
	lba := s.freeLBAs[len(s.freeLBAs)-1]
	s.freeLBAs = s.freeLBAs[:len(s.freeLBAs)-1]
	return lba, true
}

func (s *SingleVersion) freeLBA(lba int) {
	s.allocMu.Lock()
	s.freeLBAs = append(s.freeLBAs, lba)
	s.allocMu.Unlock()
}

// Put overwrites the key's single version. A put with a version stamp at or
// before the current version is rejected as stale by SEMEL's linearizable
// RPC rule (§3.3); here it is an idempotent no-op so inconsistent
// replication can deliver duplicates safely — ordering enforcement happens
// in the SEMEL server.
func (s *SingleVersion) Put(key, val []byte, ver clock.Timestamp) error {
	return s.write(key, val, ver, false)
}

// Delete overwrites the key with a tombstone.
func (s *SingleVersion) Delete(key []byte, ver clock.Timestamp) error {
	return s.write(key, nil, ver, true)
}

func (s *SingleVersion) write(key, val []byte, ver clock.Timestamp, tombstone bool) error {
	if len(key) == 0 {
		return fmt.Errorf("storage: empty key")
	}
	st := s.stripe(key)
	k := string(key)
	st.mu.Lock()
	// One program per key at a time: a second write to the same key must
	// wait, or the two programs could land on media out of version order
	// and leave a stale record under newer metadata.
	for st.writing[k] {
		s.noteWait()
		st.done.Wait()
	}
	cur, had := st.latest[k]
	if had && !ver.After(cur.ts) {
		st.mu.Unlock()
		return nil // stale or duplicate: single-version keeps the youngest
	}
	lba, hadLBA := st.lbas[k]
	if !hadLBA {
		var ok bool
		if lba, ok = s.allocLBA(); !ok {
			st.mu.Unlock()
			return fmt.Errorf("storage: single-version store full")
		}
		st.lbas[k] = lba
	}
	st.latest[k] = memVersion{ts: ver, tombstone: tombstone}
	st.writing[k] = true
	st.mu.Unlock()

	if m := s.metrics.Load(); m != nil {
		m.inflight.Add(1)
	}
	rec := record.Record{Key: key, Val: val, Ts: ver, Tombstone: tombstone}
	err := s.f.WriteLBA(lba, rec.Encode(nil))
	if m := s.metrics.Load(); m != nil {
		m.inflight.Add(-1)
	}

	st.mu.Lock()
	delete(st.writing, k)
	if err != nil {
		// The program never reached media; roll the metadata back so
		// readers cannot observe a version that does not exist.
		if had {
			st.latest[k] = cur
		} else {
			delete(st.latest, k)
			delete(st.lbas, k)
			s.freeLBA(lba)
		}
	}
	st.done.Broadcast()
	st.mu.Unlock()
	return err
}

// Get returns the single version if its timestamp is ≤ at; if the version
// is younger than the requested snapshot, the snapshot is gone and
// ErrSnapshotUnavailable is returned.
func (s *SingleVersion) Get(key []byte, at clock.Timestamp) ([]byte, clock.Timestamp, bool, error) {
	st := s.stripe(key)
	k := string(key)
	for attempt := 0; ; attempt++ {
		st.mu.Lock()
		// Wait out an in-flight program of this key (metadata already
		// names the new version, media may not hold it yet). Other keys
		// in the stripe only contend for the map lookups, never the I/O.
		for st.writing[k] {
			s.noteWait()
			st.done.Wait()
		}
		cur, ok := st.latest[k]
		lba := st.lbas[k]
		st.mu.Unlock()
		if !ok {
			return nil, clock.Timestamp{}, false, nil
		}
		if cur.ts.After(at) {
			return nil, clock.Timestamp{}, false, ErrSnapshotUnavailable
		}
		if cur.tombstone {
			return nil, clock.Timestamp{}, false, nil
		}
		page, err := s.f.ReadLBA(lba)
		if err != nil {
			return nil, clock.Timestamp{}, false, err
		}
		rec, _, err := record.Decode(page)
		if err != nil {
			return nil, clock.Timestamp{}, false, err
		}
		if !bytes.Equal(rec.Key, key) {
			return nil, clock.Timestamp{}, false, fmt.Errorf("storage: media mismatch for key %q", key)
		}
		if rec.Ts != cur.ts {
			// A concurrent overwrite landed between our metadata read and
			// the page read; the version we validated no longer exists.
			if attempt < 3 {
				continue
			}
			return nil, clock.Timestamp{}, false, ErrSnapshotUnavailable
		}
		out := make([]byte, len(rec.Val))
		copy(out, rec.Val)
		return out, rec.Ts, true, nil
	}
}

// Latest returns the single current version.
func (s *SingleVersion) Latest(key []byte) ([]byte, clock.Timestamp, bool, error) {
	return s.Get(key, clock.Timestamp{Ticks: 1<<63 - 1, Client: ^uint32(0)})
}

// LatestVersion returns the current version stamp.
func (s *SingleVersion) LatestVersion(key []byte) (clock.Timestamp, bool, bool) {
	st := s.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	cur, ok := st.latest[string(key)]
	if !ok {
		return clock.Timestamp{}, false, false
	}
	return cur.ts, cur.tombstone, true
}

// SetWatermark is a no-op: a single-version store retains nothing older
// than the current version anyway.
func (s *SingleVersion) SetWatermark(clock.Timestamp) {}

// Flush is a no-op: writes are synchronous.
func (s *SingleVersion) Flush() {}

// SetMetrics forwards the metrics registry to the underlying FTL and device
// and enables the store's own contention metrics: storage_stripe_wait_total
// counts reads/writes that had to wait behind an in-flight program of the
// same key, storage_inflight_writes gauges concurrent programs.
func (s *SingleVersion) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		s.metrics.Store(nil)
	} else {
		s.metrics.Store(&svMetrics{
			stripeWaits: reg.Counter("storage_stripe_wait_total"),
			inflight:    reg.Gauge("storage_inflight_writes"),
		})
	}
	s.f.SetMetrics(reg)
}

func (s *SingleVersion) noteWait() {
	if m := s.metrics.Load(); m != nil {
		m.stripeWaits.Inc()
	}
}

// Dump streams the single retained version of each key with timestamp >
// since.
func (s *SingleVersion) Dump(since clock.Timestamp, fn func(key []byte, ver clock.Timestamp, val []byte, tombstone bool) error) error {
	type item struct {
		key string
		v   memVersion
	}
	var items []item
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		for k, v := range st.latest {
			if v.ts.After(since) {
				items = append(items, item{key: k, v: v})
			}
		}
		st.mu.Unlock()
	}
	for _, it := range items {
		if it.v.tombstone {
			if err := fn([]byte(it.key), it.v.ts, nil, true); err != nil {
				return err
			}
			continue
		}
		val, ver, found, err := s.Get([]byte(it.key), it.v.ts)
		if err != nil || !found {
			continue // overwritten since the snapshot; newer dump entry covers it
		}
		if err := fn([]byte(it.key), ver, val, false); err != nil {
			return err
		}
	}
	return nil
}
