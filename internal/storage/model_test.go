package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/clock"
	"repro/internal/flash"
	"repro/internal/ftl"
	"repro/internal/kvlayer"
	"repro/internal/mvftl"
)

// refStore is an executable specification of the multi-version store
// semantics (§3 + §3.1's watermark retention rule), against which the real
// backends are differentially tested under random operation sequences.
type refStore struct {
	m  map[string][]memVersion // youngest first
	wm clock.Timestamp
}

func newRefStore() *refStore { return &refStore{m: make(map[string][]memVersion)} }

func (r *refStore) put(key string, val []byte, ver clock.Timestamp, tomb bool) {
	vs := r.m[key]
	pos := len(vs)
	for i, v := range vs {
		c := ver.Compare(v.ts)
		if c == 0 {
			return // idempotent duplicate
		}
		if c > 0 {
			pos = i
			break
		}
	}
	vs = append(vs, memVersion{})
	copy(vs[pos+1:], vs[pos:])
	vs[pos] = memVersion{ts: ver, val: append([]byte(nil), val...), tombstone: tomb}
	r.m[key] = vs
}

func (r *refStore) setWatermark(ts clock.Timestamp) {
	if r.wm.Before(ts) {
		r.wm = ts
	}
}

// get returns the youngest version ≤ at. Reads at or above the watermark
// are unaffected by pruning (the retention rule guarantees exactly that);
// reads below it are unspecified.
func (r *refStore) get(key string, at clock.Timestamp) (string, clock.Timestamp, bool) {
	for _, v := range r.m[key] {
		if v.ts.AtOrBefore(at) {
			if v.tombstone {
				return "", clock.Timestamp{}, false
			}
			return string(v.val), v.ts, true
		}
	}
	return "", clock.Timestamp{}, false
}

// TestBackendsMatchModel drives every multi-version backend with the same
// random operation stream as the reference model and checks that reads at
// or above the watermark always agree — under packing, garbage collection
// and compaction.
func TestBackendsMatchModel(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		for name, b := range newModelBackends(t) {
			t.Run(fmt.Sprintf("%s/seed=%d", name, seed), func(t *testing.T) {
				runModel(t, b, seed)
			})
		}
	}
}

// newModelBackends sizes the flash devices for the random stream's
// retention needs (versions live until the watermark passes them).
func newModelBackends(t *testing.T) map[string]Backend {
	t.Helper()
	geo := flash.Geometry{Channels: 2, BlocksPerChannel: 32, PagesPerBlock: 4, PageSize: 256}
	dev, err := flash.NewDevice(flash.Options{Geometry: geo, Sleeper: flash.NopSleeper{}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := mvftl.New(dev, mvftl.Options{PackTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	devV, _ := flash.NewDevice(flash.Options{Geometry: geo, Sleeper: flash.NopSleeper{}})
	f, err := ftl.New(devV, ftl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := kvlayer.New(f, kvlayer.Options{PackTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Backend{"dram": NewDRAM(), "mftl": m, "vftl": v}
}

func runModel(t *testing.T, b Backend, seed int64) {
	r := rand.New(rand.NewSource(seed))
	ref := newRefStore()
	keys := []string{"a", "b", "c", "d", "e", "f"}
	tick := int64(0)
	nextTs := func() clock.Timestamp {
		tick += int64(r.Intn(5) + 1)
		return clock.Timestamp{Ticks: tick, Client: uint32(r.Intn(3) + 1)}
	}
	for i := 0; i < 600; i++ {
		if i%40 == 39 {
			// Steady watermark progress bounds retention, like the
			// periodic client broadcasts of §4.4.
			wm := clock.Timestamp{Ticks: tick - 60}
			if wm.Ticks > 0 {
				b.SetWatermark(wm)
				ref.setWatermark(wm)
			}
		}
		key := keys[r.Intn(len(keys))]
		switch op := r.Intn(10); {
		case op < 5: // put
			ver := nextTs()
			val := []byte(fmt.Sprintf("%s-%d", key, ver.Ticks))
			if err := b.Put([]byte(key), val, ver); err != nil {
				t.Fatalf("op %d put: %v", i, err)
			}
			ref.put(key, val, ver, false)
		case op < 6: // delete
			ver := nextTs()
			if err := b.Delete([]byte(key), ver); err != nil {
				t.Fatalf("op %d delete: %v", i, err)
			}
			ref.put(key, nil, ver, true)
		case op < 7: // out-of-order put (inconsistent replication delivery)
			ver := clock.Timestamp{Ticks: tick - int64(r.Intn(20)), Client: uint32(r.Intn(3) + 1)}
			if ver.Ticks <= ref.wm.Ticks || ver.Ticks <= 0 {
				continue // below the watermark: clients never do this
			}
			val := []byte(fmt.Sprintf("%s-o%d", key, ver.Ticks))
			if err := b.Put([]byte(key), val, ver); err != nil {
				t.Fatalf("op %d ooput: %v", i, err)
			}
			ref.put(key, val, ver, false)
		case op < 8: // advance watermark
			wm := clock.Timestamp{Ticks: tick - int64(r.Intn(30))}
			if wm.Ticks > 0 {
				b.SetWatermark(wm)
				ref.setWatermark(wm)
			}
		default: // read at a timestamp at/above the watermark
			at := clock.Timestamp{Ticks: ref.wm.Ticks + int64(r.Intn(int(tick-ref.wm.Ticks)+2)), Client: ^uint32(0)}
			wantVal, wantVer, wantFound := ref.get(key, at)
			val, ver, found, err := b.Get([]byte(key), at)
			if err != nil {
				t.Fatalf("op %d get: %v", i, err)
			}
			if found != wantFound || (found && (string(val) != wantVal || ver != wantVer)) {
				t.Fatalf("op %d: get(%s@%v) = %q,%v,%v; model says %q,%v,%v",
					i, key, at, val, ver, found, wantVal, wantVer, wantFound)
			}
		}
	}
	// Final sweep: latest of every key must agree.
	maxTs := clock.Timestamp{Ticks: 1<<62 - 1, Client: ^uint32(0)}
	for _, key := range keys {
		wantVal, wantVer, wantFound := ref.get(key, maxTs)
		val, ver, found, err := b.Latest([]byte(key))
		if err != nil {
			t.Fatal(err)
		}
		if found != wantFound || (found && (string(val) != wantVal || ver != wantVer)) {
			t.Fatalf("final %s: %q,%v,%v vs model %q,%v,%v", key, val, ver, found, wantVal, wantVer, wantFound)
		}
	}
}
