// Package storage defines the versioned storage Backend used by SEMEL
// servers and provides two of the paper's backends directly: a DRAM
// (persistent-memory) backend and a single-version flash backend (the SFTL
// baseline of Figure 6). The multi-version flash backends — unified MFTL and
// split VFTL — live in internal/mvftl and internal/kvlayer and satisfy the
// same interface.
package storage

import (
	"errors"

	"repro/internal/clock"
)

// ErrSnapshotUnavailable is returned by single-version backends when asked
// for a version at a snapshot older than the only version they retain. The
// transaction layer treats it as a forced abort — the effect Figure 6
// measures when comparing single- and multi-version FTLs.
var ErrSnapshotUnavailable = errors.New("storage: snapshot version no longer available")

// Backend is a durable multi-version key-value store for one shard replica.
// Implementations must be safe for concurrent use.
type Backend interface {
	// Put makes a durable version of key with the given version stamp.
	// Versions may arrive in any timestamp order (inconsistent
	// replication); a duplicate version stamp is an idempotent no-op.
	Put(key, val []byte, ver clock.Timestamp) error
	// Delete writes a tombstone version.
	Delete(key []byte, ver clock.Timestamp) error
	// Get returns the youngest version with timestamp ≤ at.
	Get(key []byte, at clock.Timestamp) (val []byte, ver clock.Timestamp, found bool, err error)
	// Latest returns the youngest version.
	Latest(key []byte) (val []byte, ver clock.Timestamp, found bool, err error)
	// LatestVersion returns the youngest version stamp (tombstones
	// included) without reading the value.
	LatestVersion(key []byte) (ver clock.Timestamp, tombstone, found bool)
	// SetWatermark raises the garbage-collection watermark.
	SetWatermark(ts clock.Timestamp)
	// Flush forces buffered writes (e.g. packed pages) to media.
	Flush()
	// Dump streams every retained version with timestamp > since to fn,
	// stopping at fn's first error. A new primary uses it to merge
	// replica states during failover (§4.5); versions at or below the
	// watermark are identical everywhere and may be skipped via since.
	Dump(since clock.Timestamp, fn func(key []byte, ver clock.Timestamp, val []byte, tombstone bool) error) error
}
