package storage

import (
	"sync"
	"time"

	"repro/internal/clock"
)

// DRAM is an in-memory multi-version backend modeling battery-backed DRAM
// or byte-addressable NVM (§2.2): write latency ≤ 100 ns, i.e. effectively
// instant next to network latency. It is the "DRAM backend" of Figures 7
// and 8, where its very low write latency makes transaction ordering most
// sensitive to clock skew.
type DRAM struct {
	// WriteLatency optionally models a persistent-memory write delay.
	WriteLatency time.Duration

	mu        sync.RWMutex
	m         map[string][]memVersion // youngest first
	watermark clock.Timestamp
}

type memVersion struct {
	ts        clock.Timestamp
	val       []byte
	tombstone bool
}

// NewDRAM returns an empty DRAM backend.
func NewDRAM() *DRAM { return &DRAM{m: make(map[string][]memVersion)} }

var _ Backend = (*DRAM)(nil)

// Put inserts a version; duplicate version stamps are idempotent no-ops.
func (d *DRAM) Put(key, val []byte, ver clock.Timestamp) error {
	return d.insert(key, val, ver, false)
}

// Delete inserts a tombstone version.
func (d *DRAM) Delete(key []byte, ver clock.Timestamp) error {
	return d.insert(key, nil, ver, true)
}

func (d *DRAM) insert(key, val []byte, ver clock.Timestamp, tombstone bool) error {
	if d.WriteLatency > 0 {
		time.Sleep(d.WriteLatency)
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	d.mu.Lock()
	defer d.mu.Unlock()
	k := string(key)
	vs := d.m[k]
	pos := len(vs)
	for i, v := range vs {
		c := ver.Compare(v.ts)
		if c == 0 {
			return nil // idempotent duplicate
		}
		if c > 0 {
			pos = i
			break
		}
	}
	vs = append(vs, memVersion{})
	copy(vs[pos+1:], vs[pos:])
	vs[pos] = memVersion{ts: ver, val: cp, tombstone: tombstone}
	d.m[k] = d.pruneLocked(k, vs)
	return nil
}

// pruneLocked applies the watermark retention rule and returns the kept
// slice; it deletes fully-dead keys from the map.
func (d *DRAM) pruneLocked(key string, vs []memVersion) []memVersion {
	wm := d.watermark
	if wm.IsZero() {
		return vs
	}
	idx := -1
	for i, v := range vs {
		if v.ts.AtOrBefore(wm) {
			idx = i
			break
		}
	}
	if idx >= 0 && idx+1 < len(vs) {
		vs = vs[:idx+1]
	}
	if len(vs) == 1 && vs[0].tombstone && vs[0].ts.AtOrBefore(wm) {
		delete(d.m, key)
		return nil
	}
	return vs
}

// Get returns the youngest version with timestamp ≤ at.
func (d *DRAM) Get(key []byte, at clock.Timestamp) ([]byte, clock.Timestamp, bool, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, v := range d.m[string(key)] {
		if v.ts.AtOrBefore(at) {
			if v.tombstone {
				return nil, clock.Timestamp{}, false, nil
			}
			out := make([]byte, len(v.val))
			copy(out, v.val)
			return out, v.ts, true, nil
		}
	}
	return nil, clock.Timestamp{}, false, nil
}

// Latest returns the youngest version.
func (d *DRAM) Latest(key []byte) ([]byte, clock.Timestamp, bool, error) {
	return d.Get(key, clock.Timestamp{Ticks: 1<<63 - 1, Client: ^uint32(0)})
}

// LatestVersion returns the youngest version stamp without copying data.
func (d *DRAM) LatestVersion(key []byte) (clock.Timestamp, bool, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	vs := d.m[string(key)]
	if len(vs) == 0 {
		return clock.Timestamp{}, false, false
	}
	return vs[0].ts, vs[0].tombstone, true
}

// SetWatermark raises the retention watermark (monotone) and prunes lazily
// on subsequent writes.
func (d *DRAM) SetWatermark(ts clock.Timestamp) {
	d.mu.Lock()
	if d.watermark.Before(ts) {
		d.watermark = ts
	}
	d.mu.Unlock()
}

// Flush is a no-op: DRAM writes are durable immediately.
func (d *DRAM) Flush() {}

// VersionCount reports the retained version count for a key (tests).
func (d *DRAM) VersionCount(key []byte) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.m[string(key)])
}

// Dump streams every retained version with timestamp > since.
func (d *DRAM) Dump(since clock.Timestamp, fn func(key []byte, ver clock.Timestamp, val []byte, tombstone bool) error) error {
	type item struct {
		key string
		v   memVersion
	}
	d.mu.RLock()
	var items []item
	for k, vs := range d.m {
		for _, v := range vs {
			if v.ts.After(since) {
				items = append(items, item{key: k, v: v})
			}
		}
	}
	d.mu.RUnlock()
	for _, it := range items {
		val := make([]byte, len(it.v.val))
		copy(val, it.v.val)
		if err := fn([]byte(it.key), it.v.ts, val, it.v.tombstone); err != nil {
			return err
		}
	}
	return nil
}
