// Package retwis generates the Retwis benchmark workload of §5.2: a
// Twitter-clone transaction mix (Table 2) over a user population whose
// popularity follows a Zipf distribution with tunable exponent α — the
// paper's "Retwis Contention parameter". Higher α concentrates accesses on
// fewer users, increasing key sharing between concurrent transactions.
//
// Transactions are generated as key-level specifications so an aborted
// transaction can be retried "with the same set of keys and without any
// wait", exactly as in the paper's experiments.
package retwis

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Kind enumerates the Table 2 transaction types.
type Kind int

// The four Retwis transaction types.
const (
	AddUser Kind = iota
	FollowUser
	PostTweet
	GetTimeline
)

// String names the transaction type.
func (k Kind) String() string {
	switch k {
	case AddUser:
		return "AddUser"
	case FollowUser:
		return "FollowUser"
	case PostTweet:
		return "PostTweet"
	default:
		return "GetTimeline"
	}
}

// Mix is a workload composition in percent.
type Mix struct {
	AddUser     int
	FollowUser  int
	PostTweet   int
	GetTimeline int
}

// DefaultMix is Table 2: 5 / 10 / 35 / 50.
var DefaultMix = Mix{AddUser: 5, FollowUser: 10, PostTweet: 35, GetTimeline: 50}

// ReadHeavyMix is the 75%-read-only variant of §5.2's throughput/latency
// experiment: 5 / 10 / 10 / 75.
var ReadHeavyMix = Mix{AddUser: 5, FollowUser: 10, PostTweet: 10, GetTimeline: 75}

func (m Mix) total() int { return m.AddUser + m.FollowUser + m.PostTweet + m.GetTimeline }

// KV is one write of a transaction specification.
type KV struct {
	Key string
	Val []byte
}

// TxnSpec is a fully materialized transaction: the exact keys it reads and
// writes. Retries reuse the spec unchanged.
type TxnSpec struct {
	Kind   Kind
	Reads  []string
	Writes []KV
}

// ReadOnly reports whether the spec writes nothing.
func (s TxnSpec) ReadOnly() bool { return len(s.Writes) == 0 }

// zipf samples ranks 1..n with probability ∝ 1/rank^alpha. Unlike
// math/rand's Zipf it supports exponents ≤ 1, which the paper's contention
// sweep (α ∈ [0.4, 0.8]) requires.
type zipf struct {
	cum []float64
}

func newZipf(n int, alpha float64) *zipf {
	z := &zipf{cum: make([]float64, n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		z.cum[i] = sum
	}
	return z
}

// sample returns a rank in [0, n).
func (z *zipf) sample(r *rand.Rand) int {
	u := r.Float64() * z.cum[len(z.cum)-1]
	return sort.SearchFloat64s(z.cum, u)
}

// Options configures a Generator.
type Options struct {
	// Users is the pre-populated user count.
	Users int
	// Alpha is the Zipf contention exponent (0 = uniform).
	Alpha float64
	// Mix is the transaction mix; zero value means DefaultMix.
	Mix Mix
	// ValueSize is the payload size of written values (default 64; the
	// paper's device experiments use 512-byte tuples).
	ValueSize int
	// Seed makes the stream reproducible.
	Seed int64
	// FreshUserBase is the first user id AddUser creates (default
	// Users). Concurrent benchmark instances must use disjoint bases so
	// their AddUser transactions do not collide.
	FreshUserBase int
}

// Generator produces TxnSpecs. It is not safe for concurrent use; create
// one per client (as the paper runs independent benchmark instances).
type Generator struct {
	opt  Options
	rng  *rand.Rand
	dist *zipf
	next int // next fresh user id for AddUser
}

// NewGenerator builds a generator over a population of opt.Users existing
// users.
func NewGenerator(opt Options) *Generator {
	if opt.Users <= 0 {
		opt.Users = 1000
	}
	if opt.Mix.total() == 0 {
		opt.Mix = DefaultMix
	}
	if opt.ValueSize <= 0 {
		opt.ValueSize = 64
	}
	if opt.FreshUserBase == 0 {
		opt.FreshUserBase = opt.Users
	}
	g := &Generator{opt: opt, rng: rand.New(rand.NewSource(opt.Seed)), next: opt.FreshUserBase}
	if opt.Alpha > 0 {
		g.dist = newZipf(opt.Users, opt.Alpha)
	}
	return g
}

// user samples an existing user id, Zipf-skewed when α > 0.
func (g *Generator) user() int {
	if g.dist != nil {
		return g.dist.sample(g.rng)
	}
	return g.rng.Intn(g.opt.Users)
}

func (g *Generator) val() []byte {
	b := make([]byte, g.opt.ValueSize)
	for i := range b {
		b[i] = byte('a' + g.rng.Intn(26))
	}
	return b
}

// Key names used by the workload; exported for pre-population.
func UserKey(u int) string      { return fmt.Sprintf("user:%d", u) }
func FollowersKey(u int) string { return fmt.Sprintf("followers:%d", u) }
func FollowingKey(u int) string { return fmt.Sprintf("following:%d", u) }
func TimelineKey(u int) string  { return fmt.Sprintf("timeline:%d", u) }
func PostKey(u, seq int) string { return fmt.Sprintf("post:%d:%d", u, seq) }

// Next generates one transaction specification following the mix.
func (g *Generator) Next() TxnSpec {
	p := g.rng.Intn(g.opt.Mix.total())
	switch {
	case p < g.opt.Mix.AddUser:
		return g.addUser()
	case p < g.opt.Mix.AddUser+g.opt.Mix.FollowUser:
		return g.followUser()
	case p < g.opt.Mix.AddUser+g.opt.Mix.FollowUser+g.opt.Mix.PostTweet:
		return g.postTweet()
	default:
		return g.getTimeline()
	}
}

// addUser is Table 2's Add User: 1 GET, 2 PUTs.
func (g *Generator) addUser() TxnSpec {
	u := g.next
	g.next++
	return TxnSpec{
		Kind:  AddUser,
		Reads: []string{UserKey(u)}, // existence check
		Writes: []KV{
			{Key: UserKey(u), Val: g.val()},
			{Key: FollowersKey(u), Val: g.val()},
		},
	}
}

// followUser is Table 2's Follow User: 2 GETs, 2 PUTs.
func (g *Generator) followUser() TxnSpec {
	a := g.user()
	b := g.user()
	for b == a {
		b = g.user()
	}
	return TxnSpec{
		Kind:  FollowUser,
		Reads: []string{UserKey(a), UserKey(b)},
		Writes: []KV{
			{Key: FollowingKey(a), Val: g.val()},
			{Key: FollowersKey(b), Val: g.val()},
		},
	}
}

// postTweet is Table 2's Post Tweet: 3 GETs, 5 PUTs — the post plus fan-out
// to follower timelines.
func (g *Generator) postTweet() TxnSpec {
	u := g.user()
	f1 := g.user()
	f2 := g.user()
	seq := g.rng.Intn(1 << 20)
	return TxnSpec{
		Kind:  PostTweet,
		Reads: []string{UserKey(u), FollowersKey(u), TimelineKey(u)},
		Writes: []KV{
			{Key: PostKey(u, seq), Val: g.val()},
			{Key: TimelineKey(u), Val: g.val()},
			{Key: TimelineKey(f1), Val: g.val()},
			{Key: TimelineKey(f2), Val: g.val()},
			{Key: FollowersKey(u), Val: g.val()},
		},
	}
}

// getTimeline is Table 2's Get Timeline: rand(1,10) GETs, 0 PUTs.
func (g *Generator) getTimeline() TxnSpec {
	u := g.user()
	n := 1 + g.rng.Intn(10)
	reads := make([]string, 0, n)
	reads = append(reads, TimelineKey(u))
	for i := 1; i < n; i++ {
		reads = append(reads, TimelineKey(g.user()))
	}
	return TxnSpec{Kind: GetTimeline, Reads: reads}
}

// Store is the transactional surface a spec executes against; both
// milana.Txn and the Centiman baseline transaction satisfy it.
type Store interface {
	Get(ctx context.Context, key []byte) (val []byte, found bool, err error)
	Put(key, val []byte) error
}

// Execute runs the spec's reads and buffered writes against a transaction.
func Execute(ctx context.Context, t Store, spec TxnSpec) error {
	for _, k := range spec.Reads {
		if _, _, err := t.Get(ctx, []byte(k)); err != nil {
			return err
		}
	}
	for _, kv := range spec.Writes {
		if err := t.Put([]byte(kv.Key), kv.Val); err != nil {
			return err
		}
	}
	return nil
}

// PopulationKeys enumerates the keys that should exist before the workload
// starts: user records, follower lists and timelines for every user.
func PopulationKeys(users int) []string {
	keys := make([]string, 0, users*4)
	for u := 0; u < users; u++ {
		keys = append(keys, UserKey(u), FollowersKey(u), FollowingKey(u), TimelineKey(u))
	}
	return keys
}
