package retwis

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestMixFrequencies(t *testing.T) {
	g := NewGenerator(Options{Users: 1000, Seed: 1})
	counts := map[Kind]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next().Kind]++
	}
	check := func(kind Kind, pct int) {
		t.Helper()
		got := float64(counts[kind]) / n * 100
		if math.Abs(got-float64(pct)) > 2 {
			t.Errorf("%v: %.1f%%, want ≈%d%%", kind, got, pct)
		}
	}
	check(AddUser, DefaultMix.AddUser)
	check(FollowUser, DefaultMix.FollowUser)
	check(PostTweet, DefaultMix.PostTweet)
	check(GetTimeline, DefaultMix.GetTimeline)
}

func TestTable2Shapes(t *testing.T) {
	g := NewGenerator(Options{Users: 100, Seed: 2})
	for i := 0; i < 2000; i++ {
		s := g.Next()
		switch s.Kind {
		case AddUser:
			if len(s.Reads) != 1 || len(s.Writes) != 2 {
				t.Fatalf("AddUser: %d gets %d puts, want 1/2", len(s.Reads), len(s.Writes))
			}
		case FollowUser:
			if len(s.Reads) != 2 || len(s.Writes) != 2 {
				t.Fatalf("FollowUser: %d gets %d puts, want 2/2", len(s.Reads), len(s.Writes))
			}
		case PostTweet:
			if len(s.Reads) != 3 || len(s.Writes) != 5 {
				t.Fatalf("PostTweet: %d gets %d puts, want 3/5", len(s.Reads), len(s.Writes))
			}
		case GetTimeline:
			if len(s.Reads) < 1 || len(s.Reads) > 10 || len(s.Writes) != 0 {
				t.Fatalf("GetTimeline: %d gets %d puts, want 1-10/0", len(s.Reads), len(s.Writes))
			}
			if !s.ReadOnly() {
				t.Fatal("GetTimeline not read-only")
			}
		}
	}
}

func TestGetTimelineLengthUniform(t *testing.T) {
	g := NewGenerator(Options{Users: 100, Seed: 3, Mix: Mix{GetTimeline: 100}})
	counts := make([]int, 11)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[len(g.Next().Reads)]++
	}
	for l := 1; l <= 10; l++ {
		got := float64(counts[l]) / n
		if math.Abs(got-0.1) > 0.02 {
			t.Errorf("timeline length %d: frequency %.3f, want ≈0.1", l, got)
		}
	}
}

func TestZipfContention(t *testing.T) {
	// Higher α must concentrate accesses: the hottest user's share grows.
	share := func(alpha float64) float64 {
		z := newZipf(1000, alpha)
		r := rand.New(rand.NewSource(7))
		hot := 0
		const n = 50000
		for i := 0; i < n; i++ {
			if z.sample(r) == 0 {
				hot++
			}
		}
		return float64(hot) / n
	}
	s4, s8 := share(0.4), share(0.8)
	if !(s8 > 2*s4) {
		t.Fatalf("α=0.8 hot share %.4f not ≫ α=0.4 share %.4f", s8, s4)
	}
	// Uniform when alpha = 0 (generator path).
	g := NewGenerator(Options{Users: 10, Alpha: 0, Seed: 1, Mix: Mix{GetTimeline: 100}})
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		for _, k := range g.Next().Reads {
			seen[k] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("uniform sampling hit %d/10 users", len(seen))
	}
}

func TestAddUserCreatesFreshUsers(t *testing.T) {
	g := NewGenerator(Options{Users: 50, Seed: 4, Mix: Mix{AddUser: 100}})
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		s := g.Next()
		k := s.Writes[0].Key
		if seen[k] {
			t.Fatalf("AddUser reused id %s", k)
		}
		seen[k] = true
		if !strings.HasPrefix(k, "user:") {
			t.Fatalf("unexpected key %s", k)
		}
	}
}

func TestDeterministicStreams(t *testing.T) {
	a := NewGenerator(Options{Users: 100, Alpha: 0.6, Seed: 42})
	b := NewGenerator(Options{Users: 100, Alpha: 0.6, Seed: 42})
	for i := 0; i < 500; i++ {
		sa, sb := a.Next(), b.Next()
		if sa.Kind != sb.Kind || len(sa.Reads) != len(sb.Reads) || len(sa.Writes) != len(sb.Writes) {
			t.Fatalf("streams diverge at %d", i)
		}
		for j := range sa.Reads {
			if sa.Reads[j] != sb.Reads[j] {
				t.Fatalf("read keys diverge at %d", i)
			}
		}
	}
}

type fakeTxn struct {
	gets []string
	puts []string
}

func (f *fakeTxn) Get(ctx context.Context, key []byte) ([]byte, bool, error) {
	f.gets = append(f.gets, string(key))
	return nil, false, nil
}

func (f *fakeTxn) Put(key, val []byte) error {
	f.puts = append(f.puts, string(key))
	return nil
}

func TestExecuteIssuesSpec(t *testing.T) {
	spec := TxnSpec{
		Kind:   FollowUser,
		Reads:  []string{"user:1", "user:2"},
		Writes: []KV{{Key: "following:1"}, {Key: "followers:2"}},
	}
	ft := &fakeTxn{}
	if err := Execute(context.Background(), ft, spec); err != nil {
		t.Fatal(err)
	}
	if len(ft.gets) != 2 || len(ft.puts) != 2 || ft.gets[0] != "user:1" || ft.puts[1] != "followers:2" {
		t.Fatalf("execute issued %v / %v", ft.gets, ft.puts)
	}
}

func TestPopulationKeys(t *testing.T) {
	keys := PopulationKeys(3)
	if len(keys) != 12 {
		t.Fatalf("%d keys, want 12", len(keys))
	}
	if keys[0] != "user:0" || keys[11] != "timeline:2" {
		t.Fatalf("unexpected ordering: %v", keys)
	}
}
