// Package cluster provides the shard directory: the global master state of
// §3 that maps each key to a data shard and each shard to its primary and
// backup replicas. The paper implements this with standard techniques
// (consistent hashing, a ZooKeeper-style master); here the directory is an
// in-process object shared by clients and servers, with explicit failover.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// ShardID identifies one shard of the key space.
type ShardID int

// ReplicaSet is the replica group of one shard: a designated primary and 2f
// backups.
type ReplicaSet struct {
	Primary string
	Backups []string
	// Full is the group's original size (2f+1). It persists across
	// failovers: quorum arithmetic must keep using the original f, or a
	// shrunken group would silently weaken its guarantees.
	Full int
	// Epoch counts this shard's failovers. Replication traffic carries
	// the sender's epoch so a message from a deposed regime can be
	// fenced instead of retroactively mutating the new primary's state.
	Epoch uint64
}

// Replicas returns all replica addresses, primary first.
func (r ReplicaSet) Replicas() []string {
	out := make([]string, 0, 1+len(r.Backups))
	out = append(out, r.Primary)
	out = append(out, r.Backups...)
	return out
}

// F returns the number of failures the group was provisioned to tolerate:
// half its *original* size rounded down (the group has 2f+1 members).
// Failovers shrink the live membership but never lower f — a majority of
// the original group remains required for writes, leases and promotion.
func (r ReplicaSet) F() int {
	full := r.Full
	if full == 0 {
		full = 1 + len(r.Backups)
	}
	return full / 2
}

const virtualNodes = 64

type ringEntry struct {
	hash  uint64
	shard ShardID
}

// Directory maps keys to shards (consistent hashing) and shards to replica
// sets. It is safe for concurrent use.
type Directory struct {
	mu     sync.RWMutex
	shards []ReplicaSet
	ring   []ringEntry
	epoch  uint64
}

// New builds a directory over the given replica sets.
func New(shards []ReplicaSet) (*Directory, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: no shards")
	}
	for i, s := range shards {
		if s.Primary == "" {
			return nil, fmt.Errorf("cluster: shard %d has no primary", i)
		}
	}
	for i := range shards {
		if shards[i].Full == 0 {
			shards[i].Full = 1 + len(shards[i].Backups)
		}
	}
	d := &Directory{shards: shards}
	for id := range shards {
		for v := 0; v < virtualNodes; v++ {
			d.ring = append(d.ring, ringEntry{hash: hash64(fmt.Sprintf("shard-%d-vn-%d", id, v)), shard: ShardID(id)})
		}
	}
	sort.Slice(d.ring, func(i, j int) bool { return d.ring[i].hash < d.ring[j].hash })
	return d, nil
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// NumShards returns the shard count.
func (d *Directory) NumShards() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.shards)
}

// ShardFor maps a key to its shard by consistent hashing: the first virtual
// node clockwise from the key's hash.
func (d *Directory) ShardFor(key []byte) ShardID {
	h := fnv.New64a()
	h.Write(key)
	kh := h.Sum64()
	d.mu.RLock()
	defer d.mu.RUnlock()
	i := sort.Search(len(d.ring), func(i int) bool { return d.ring[i].hash >= kh })
	if i == len(d.ring) {
		i = 0
	}
	return d.ring[i].shard
}

// Shard returns the replica set of a shard.
func (d *Directory) Shard(id ShardID) (ReplicaSet, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if int(id) < 0 || int(id) >= len(d.shards) {
		return ReplicaSet{}, fmt.Errorf("cluster: no shard %d", id)
	}
	return d.copyLocked(id), nil
}

// Primary returns the current primary address of a shard.
func (d *Directory) Primary(id ShardID) (string, error) {
	rs, err := d.Shard(id)
	if err != nil {
		return "", err
	}
	return rs.Primary, nil
}

func (d *Directory) copyLocked(id ShardID) ReplicaSet {
	s := d.shards[id]
	return ReplicaSet{Primary: s.Primary, Backups: append([]string(nil), s.Backups...), Full: s.Full, Epoch: s.Epoch}
}

// Epoch returns the configuration epoch; it increments on every failover.
func (d *Directory) Epoch() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.epoch
}

// Failover removes the failed primary of a shard and promotes the first
// backup. It returns the promoted address.
func (d *Directory) Failover(id ShardID) (string, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if int(id) < 0 || int(id) >= len(d.shards) {
		return "", fmt.Errorf("cluster: no shard %d", id)
	}
	s := &d.shards[id]
	if len(s.Backups) == 0 {
		return "", fmt.Errorf("cluster: shard %d has no backup to promote", id)
	}
	s.Primary = s.Backups[0]
	s.Backups = append([]string(nil), s.Backups[1:]...)
	s.Epoch++
	d.epoch++
	return s.Primary, nil
}
