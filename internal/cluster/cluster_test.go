package cluster

import (
	"fmt"
	"testing"
)

func threeShards() []ReplicaSet {
	var sets []ReplicaSet
	for s := 0; s < 3; s++ {
		sets = append(sets, ReplicaSet{
			Primary: fmt.Sprintf("s%d/r0", s),
			Backups: []string{fmt.Sprintf("s%d/r1", s), fmt.Sprintf("s%d/r2", s)},
		})
	}
	return sets
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty shard list accepted")
	}
	if _, err := New([]ReplicaSet{{}}); err == nil {
		t.Fatal("shard without primary accepted")
	}
}

func TestReplicaSetHelpers(t *testing.T) {
	rs := ReplicaSet{Primary: "p", Backups: []string{"b1", "b2"}}
	reps := rs.Replicas()
	if len(reps) != 3 || reps[0] != "p" || reps[2] != "b2" {
		t.Fatalf("replicas = %v", reps)
	}
	if rs.F() != 1 {
		t.Fatalf("F = %d", rs.F())
	}
	if (ReplicaSet{Primary: "p"}).F() != 0 {
		t.Fatal("single replica must tolerate 0 failures")
	}
}

func TestShardForDeterministicAndTotal(t *testing.T) {
	d, err := New(threeShards())
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[ShardID]int)
	for i := 0; i < 3000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		a := d.ShardFor(key)
		b := d.ShardFor(key)
		if a != b {
			t.Fatalf("non-deterministic mapping for %s: %d then %d", key, a, b)
		}
		if int(a) < 0 || int(a) >= 3 {
			t.Fatalf("shard %d out of range", a)
		}
		counts[a]++
	}
	// Consistent hashing with 64 vnodes per shard should spread keys
	// roughly evenly: no shard should be emptier than half its share.
	for id, n := range counts {
		if n < 3000/3/2 {
			t.Fatalf("shard %d got only %d of 3000 keys", id, n)
		}
	}
}

func TestShardLookup(t *testing.T) {
	d, _ := New(threeShards())
	if d.NumShards() != 3 {
		t.Fatalf("NumShards = %d", d.NumShards())
	}
	rs, err := d.Shard(1)
	if err != nil || rs.Primary != "s1/r0" {
		t.Fatalf("Shard(1) = %+v, %v", rs, err)
	}
	if _, err := d.Shard(99); err == nil {
		t.Fatal("bad shard id accepted")
	}
	p, err := d.Primary(2)
	if err != nil || p != "s2/r0" {
		t.Fatalf("Primary(2) = %q, %v", p, err)
	}
	// Returned sets are copies.
	rs.Backups[0] = "mutated"
	rs2, _ := d.Shard(1)
	if rs2.Backups[0] == "mutated" {
		t.Fatal("Shard returns aliased state")
	}
}

func TestFailover(t *testing.T) {
	d, _ := New(threeShards())
	e0 := d.Epoch()
	promoted, err := d.Failover(0)
	if err != nil {
		t.Fatal(err)
	}
	if promoted != "s0/r1" {
		t.Fatalf("promoted %q", promoted)
	}
	if d.Epoch() != e0+1 {
		t.Fatal("epoch did not advance")
	}
	rs, _ := d.Shard(0)
	if rs.Primary != "s0/r1" || len(rs.Backups) != 1 || rs.Backups[0] != "s0/r2" {
		t.Fatalf("post-failover set = %+v", rs)
	}
	// Second failover exhausts backups eventually.
	if _, err := d.Failover(0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Failover(0); err == nil {
		t.Fatal("failover with no backups succeeded")
	}
	if _, err := d.Failover(99); err == nil {
		t.Fatal("failover of unknown shard succeeded")
	}
	// Failover must not change key → shard mapping (only the replica set).
	key := []byte("stable-key")
	before := d.ShardFor(key)
	if after := d.ShardFor(key); after != before {
		t.Fatal("failover moved keys between shards")
	}
}
