package wire

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/clock"
	"repro/internal/obs"
)

// roundTrip pushes msg through the gob codec as an interface payload — the
// shape the TCP frame carries — and returns the decoded value.
func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	var buf bytes.Buffer
	env := struct{ Payload any }{Payload: msg}
	if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
		t.Fatalf("%T: encode: %v", msg, err)
	}
	var out struct{ Payload any }
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("%T: decode: %v", msg, err)
	}
	return out.Payload
}

func TestTraceIDDeterministic(t *testing.T) {
	a := TxnID{Client: 7, Seq: 42}.TraceID()
	b := TxnID{Client: 7, Seq: 42}.TraceID()
	if a != b {
		t.Fatalf("TraceID not deterministic: %x vs %x", a, b)
	}
	if a>>63 != 1 {
		t.Fatalf("TraceID top bit clear: %x (would collide with SpanStore.NextID)", a)
	}
	if c := (TxnID{Client: 8, Seq: 42}).TraceID(); c == a {
		t.Fatalf("distinct clients share trace ID %x", a)
	}
	if c := (TxnID{Client: 7, Seq: 43}).TraceID(); c == a {
		t.Fatalf("distinct seqs share trace ID %x", a)
	}
}

// TestTraceContextGobRoundTrip checks the trace-bearing wire messages survive
// the codec with every field intact — in particular the per-op TraceContext
// inside a coalesced replication batch, which is what lets one batch carry
// spans for many originating clients.
func TestTraceContextGobRoundTrip(t *testing.T) {
	ts := clock.Timestamp{Ticks: 99, Client: 3}
	tc := obs.TraceContext{TraceID: 0xdeadbeefcafe, SpanID: 0x1234, Sampled: true}

	rd := roundTrip(t, ReplicateData{Ops: []DataOp{
		{Key: []byte("a"), Version: ts, TC: tc},
		{Key: []byte("b"), Version: ts}, // untraced op in the same batch
	}}).(ReplicateData)
	if len(rd.Ops) != 2 {
		t.Fatalf("ops lost: %+v", rd)
	}
	if rd.Ops[0].TC != tc {
		t.Fatalf("DataOp.TC lost in transit: %+v", rd.Ops[0].TC)
	}
	if rd.Ops[1].TC != (obs.TraceContext{}) {
		t.Fatalf("untraced op grew a context: %+v", rd.Ops[1].TC)
	}

	tq := roundTrip(t, TraceRequest{TraceID: tc.TraceID}).(TraceRequest)
	if tq.TraceID != tc.TraceID {
		t.Fatalf("TraceRequest.TraceID = %x, want %x", tq.TraceID, tc.TraceID)
	}

	span := obs.SpanRecord{
		TraceID: tc.TraceID, SpanID: 5, Parent: 4,
		Node: "shard0/r1", Name: "replicate-op",
		Start: 100, End: 250, Outcome: "ok",
	}
	health := clock.Health{OffsetNs: -1500, ResidualNs: -1200, DriftNs: -300, SinceSyncNs: 7e8, UncertaintyNs: 1500}
	tr := roundTrip(t, TraceResponse{Addr: "shard0/r1", Spans: []obs.SpanRecord{span}, Clock: health}).(TraceResponse)
	if tr.Addr != "shard0/r1" || len(tr.Spans) != 1 || tr.Spans[0] != span {
		t.Fatalf("TraceResponse mangled: %+v", tr)
	}
	if tr.Clock != health {
		t.Fatalf("TraceResponse.Clock = %+v, want %+v", tr.Clock, health)
	}

	if _, ok := roundTrip(t, TimeHealthRequest{}).(TimeHealthRequest); !ok {
		t.Fatalf("TimeHealthRequest lost its type")
	}
	th := roundTrip(t, TimeHealthResponse{
		Addr: "shard1/r0", Shard: 1, Primary: true,
		Clock: health, Now: ts, Watermark: clock.Timestamp{Ticks: 42}, WatermarkLagNs: 57,
	}).(TimeHealthResponse)
	if th.Addr != "shard1/r0" || !th.Primary || th.Clock != health || th.WatermarkLagNs != 57 {
		t.Fatalf("TimeHealthResponse mangled: %+v", th)
	}
}
