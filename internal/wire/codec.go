// Codec v1: explicit, versioned, length-free binary encoding for every
// registered wire message. The transport's frame layer length-prefixes and
// tags each message (internal/transport/frame.go); this file owns only the
// payload bytes:
//
//	payload := typeID(uvarint) fields...
//
// Field encodings (frozen; see the golden-bytes test):
//
//	bool        one byte, 0 or 1
//	intN        zig-zag varint (binary.AppendVarint)
//	uintN       uvarint
//	string      uvarint length + raw bytes
//	[]byte      0 = nil, else uvarint(len+1) + raw bytes
//	slice       0 = nil, else uvarint(len+1) + elements
//	map         0 = nil, else uvarint(len+1) + entries in sorted key order
//	Timestamp   varint ticks + uvarint client
//
// Versioning rules: type IDs and field order are append-only — a new field
// goes at the end of its message under a NEW type ID (vN+1 message) or a
// new message type; existing IDs never change meaning. A peer that does
// not know a type ID cannot decode the frame, which is why the transport
// keeps the per-frame gob fallback: unregistered or newer-than-me types
// travel as gob, so mixed-version clusters interoperate at reduced speed
// instead of failing.
//
// There is no reflection anywhere on these paths, and encoding appends to
// a caller-owned (pooled) buffer, so a steady-state encode allocates
// nothing.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/transport"
)

// Codec is the codec-v1 implementation installed into the transport by this
// package's init. Exported so benchmarks and tests can drive it directly.
var Codec transport.Codec = codecV1{}

type codecV1 struct{}

func (codecV1) Append(buf []byte, msg any) ([]byte, error) { return appendMessage(buf, msg) }

func (codecV1) Decode(data []byte) (any, error) {
	r := reader{b: data}
	v, err := decMessage(&r)
	if err != nil {
		return nil, err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after message", len(r.b))
	}
	return v, nil
}

// Type IDs are part of the on-wire format: append-only, never renumbered.
const (
	tGetRequest uint64 = iota + 1
	tGetResponse
	tMultiGetRequest
	tMultiGetResponse
	tPutRequest
	tPutResponse
	tDeleteRequest
	tDeleteResponse
	tReplicateData
	tReplicated
	tAck
	tBatchAck
	tWatermarkBroadcast
	tPrepareRequest
	tPrepareResponse
	tDecisionRequest
	tDecisionResponse
	tStatusRequest
	tStatusResponse
	tReplicatePrepare
	tReplicateDecision
	tLeaseRequest
	tLeaseResponse
	tRecoveryPullRequest
	tRecoveryPullResponse
	tPromoteRequest
	tPromoteResponse
	tStatsRequest
	tStatsResponse
	tTraceRequest
	tTraceResponse
	tTimeHealthRequest
	tTimeHealthResponse
	tAuditRequest
	tAuditResponse
	tTSDBRequest
	tTSDBResponse
	tWALCheckpoint
	tWALStatusRequest
	tWALStatusResponse
)

var (
	errTruncated   = errors.New("wire: truncated message")
	errBadLength   = errors.New("wire: implausible collection length")
	errUnknownType = errors.New("wire: unknown message type id")
)

// ---- append primitives ----

func au(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func ai(b []byte, v int64) []byte  { return binary.AppendVarint(b, v) }
func aStr(b []byte, s string) []byte {
	b = au(b, uint64(len(s)))
	return append(b, s...)
}

// aBytes keeps the nil/empty distinction: 0 = nil, n+1 = n payload bytes.
func aBytes(b, p []byte) []byte {
	if p == nil {
		return append(b, 0)
	}
	b = au(b, uint64(len(p))+1)
	return append(b, p...)
}

// aLen encodes a slice/map length with the same nil/empty scheme.
func aLen(b []byte, n int, isNil bool) []byte {
	if isNil {
		return append(b, 0)
	}
	return au(b, uint64(n)+1)
}

func aBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func aTs(b []byte, t clock.Timestamp) []byte {
	b = ai(b, t.Ticks)
	return au(b, uint64(t.Client))
}

func aTC(b []byte, tc obs.TraceContext) []byte {
	b = au(b, tc.TraceID)
	b = au(b, tc.SpanID)
	return aBool(b, tc.Sampled)
}

// ---- decode primitives ----

type reader struct {
	b   []byte
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = errTruncated
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.err = errTruncated
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *reader) bool() bool {
	if r.err != nil {
		return false
	}
	if len(r.b) < 1 {
		r.err = errTruncated
		return false
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v != 0
}

func (r *reader) raw(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b) {
		r.err = errTruncated
		return nil
	}
	p := r.b[:n]
	r.b = r.b[n:]
	return p
}

// str copies, because the frame buffer is pooled and recycled after decode.
func (r *reader) str() string {
	n := r.uvarint()
	if r.err == nil && n > uint64(len(r.b)) {
		r.err = errTruncated
		return ""
	}
	return string(r.raw(int(n)))
}

func (r *reader) bytes() []byte {
	n := r.uvarint()
	if n == 0 || r.err != nil {
		return nil
	}
	p := r.raw(int(n - 1))
	if r.err != nil {
		return nil
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out
}

// length decodes a slice/map length, rejecting counts that cannot fit in
// the remaining bytes (each element costs at least one byte).
func (r *reader) length() (n int, isNil bool) {
	v := r.uvarint()
	if r.err != nil || v == 0 {
		return 0, true
	}
	v--
	if v > uint64(len(r.b)) {
		r.err = errBadLength
		return 0, true
	}
	return int(v), false
}

func (r *reader) ts() clock.Timestamp {
	t := r.varint()
	c := r.uvarint()
	return clock.Timestamp{Ticks: t, Client: uint32(c)}
}

func (r *reader) tc() obs.TraceContext {
	return obs.TraceContext{TraceID: r.uvarint(), SpanID: r.uvarint(), Sampled: r.bool()}
}

// ---- message dispatch ----

// appendMessage encodes typeID + fields for every registered message. It
// returns transport.ErrUnsupportedType for anything else, which makes the
// transport fall back to a gob frame.
func appendMessage(b []byte, msg any) ([]byte, error) {
	switch m := msg.(type) {
	case GetRequest:
		return appendGetRequest(au(b, tGetRequest), &m), nil
	case *GetRequest:
		return appendGetRequest(au(b, tGetRequest), m), nil
	case GetResponse:
		return appendGetResponse(au(b, tGetResponse), &m), nil
	case *GetResponse:
		return appendGetResponse(au(b, tGetResponse), m), nil
	case MultiGetRequest:
		return appendMultiGetRequest(au(b, tMultiGetRequest), &m), nil
	case *MultiGetRequest:
		return appendMultiGetRequest(au(b, tMultiGetRequest), m), nil
	case MultiGetResponse:
		return appendMultiGetResponse(au(b, tMultiGetResponse), &m), nil
	case *MultiGetResponse:
		return appendMultiGetResponse(au(b, tMultiGetResponse), m), nil
	case PutRequest:
		return appendPutRequest(au(b, tPutRequest), &m), nil
	case *PutRequest:
		return appendPutRequest(au(b, tPutRequest), m), nil
	case PutResponse:
		return aBool(au(b, tPutResponse), m.Rejected), nil
	case *PutResponse:
		return aBool(au(b, tPutResponse), m.Rejected), nil
	case DeleteRequest:
		return appendDeleteRequest(au(b, tDeleteRequest), &m), nil
	case *DeleteRequest:
		return appendDeleteRequest(au(b, tDeleteRequest), m), nil
	case DeleteResponse:
		return aBool(au(b, tDeleteResponse), m.Rejected), nil
	case *DeleteResponse:
		return aBool(au(b, tDeleteResponse), m.Rejected), nil
	case ReplicateData:
		return appendReplicateData(au(b, tReplicateData), &m), nil
	case *ReplicateData:
		return appendReplicateData(au(b, tReplicateData), m), nil
	case Replicated:
		return appendReplicated(au(b, tReplicated), &m)
	case *Replicated:
		return appendReplicated(au(b, tReplicated), m)
	case Ack:
		return au(b, tAck), nil
	case *Ack:
		return au(b, tAck), nil
	case BatchAck:
		return appendBatchAck(au(b, tBatchAck), &m), nil
	case *BatchAck:
		return appendBatchAck(au(b, tBatchAck), m), nil
	case WatermarkBroadcast:
		return aTs(au(au(b, tWatermarkBroadcast), uint64(m.Client)), m.Ts), nil
	case *WatermarkBroadcast:
		return aTs(au(au(b, tWatermarkBroadcast), uint64(m.Client)), m.Ts), nil
	case PrepareRequest:
		return appendPrepareRequest(au(b, tPrepareRequest), &m), nil
	case *PrepareRequest:
		return appendPrepareRequest(au(b, tPrepareRequest), m), nil
	case PrepareResponse:
		return appendPrepareResponse(au(b, tPrepareResponse), &m), nil
	case *PrepareResponse:
		return appendPrepareResponse(au(b, tPrepareResponse), m), nil
	case DecisionRequest:
		return aBool(appendTxnID(au(b, tDecisionRequest), m.ID), m.Commit), nil
	case *DecisionRequest:
		return aBool(appendTxnID(au(b, tDecisionRequest), m.ID), m.Commit), nil
	case DecisionResponse:
		return au(b, tDecisionResponse), nil
	case *DecisionResponse:
		return au(b, tDecisionResponse), nil
	case StatusRequest:
		return appendTxnID(au(b, tStatusRequest), m.ID), nil
	case *StatusRequest:
		return appendTxnID(au(b, tStatusRequest), m.ID), nil
	case StatusResponse:
		return ai(au(b, tStatusResponse), int64(m.Status)), nil
	case *StatusResponse:
		return ai(au(b, tStatusResponse), int64(m.Status)), nil
	case ReplicatePrepare:
		return appendTxnRecord(au(b, tReplicatePrepare), &m.Record), nil
	case *ReplicatePrepare:
		return appendTxnRecord(au(b, tReplicatePrepare), &m.Record), nil
	case ReplicateDecision:
		return aBool(appendTxnID(au(b, tReplicateDecision), m.ID), m.Commit), nil
	case *ReplicateDecision:
		return aBool(appendTxnID(au(b, tReplicateDecision), m.ID), m.Commit), nil
	case LeaseRequest:
		return aTs(aStr(au(b, tLeaseRequest), m.Primary), m.Expiry), nil
	case *LeaseRequest:
		return aTs(aStr(au(b, tLeaseRequest), m.Primary), m.Expiry), nil
	case LeaseResponse:
		return aBool(au(b, tLeaseResponse), m.Granted), nil
	case *LeaseResponse:
		return aBool(au(b, tLeaseResponse), m.Granted), nil
	case RecoveryPullRequest:
		return aTs(au(b, tRecoveryPullRequest), m.Since), nil
	case *RecoveryPullRequest:
		return aTs(au(b, tRecoveryPullRequest), m.Since), nil
	case RecoveryPullResponse:
		return appendRecoveryPullResponse(au(b, tRecoveryPullResponse), &m), nil
	case *RecoveryPullResponse:
		return appendRecoveryPullResponse(au(b, tRecoveryPullResponse), m), nil
	case PromoteRequest:
		return au(b, tPromoteRequest), nil
	case *PromoteRequest:
		return au(b, tPromoteRequest), nil
	case PromoteResponse:
		return au(b, tPromoteResponse), nil
	case *PromoteResponse:
		return au(b, tPromoteResponse), nil
	case StatsRequest:
		return aBool(au(b, tStatsRequest), m.Detailed), nil
	case *StatsRequest:
		return aBool(au(b, tStatsRequest), m.Detailed), nil
	case StatsResponse:
		return appendStatsResponse(au(b, tStatsResponse), &m), nil
	case *StatsResponse:
		return appendStatsResponse(au(b, tStatsResponse), m), nil
	case TraceRequest:
		return au(au(b, tTraceRequest), m.TraceID), nil
	case *TraceRequest:
		return au(au(b, tTraceRequest), m.TraceID), nil
	case TraceResponse:
		return appendTraceResponse(au(b, tTraceResponse), &m), nil
	case *TraceResponse:
		return appendTraceResponse(au(b, tTraceResponse), m), nil
	case TimeHealthRequest:
		return au(b, tTimeHealthRequest), nil
	case *TimeHealthRequest:
		return au(b, tTimeHealthRequest), nil
	case TimeHealthResponse:
		return appendTimeHealthResponse(au(b, tTimeHealthResponse), &m), nil
	case *TimeHealthResponse:
		return appendTimeHealthResponse(au(b, tTimeHealthResponse), m), nil
	case AuditRequest:
		return au(b, tAuditRequest), nil
	case *AuditRequest:
		return au(b, tAuditRequest), nil
	case AuditResponse:
		return appendAuditResponse(au(b, tAuditResponse), &m), nil
	case *AuditResponse:
		return appendAuditResponse(au(b, tAuditResponse), m), nil
	case TSDBRequest:
		return appendTSDBRequest(au(b, tTSDBRequest), &m), nil
	case *TSDBRequest:
		return appendTSDBRequest(au(b, tTSDBRequest), m), nil
	case TSDBResponse:
		return appendTSDBResponse(au(b, tTSDBResponse), &m), nil
	case *TSDBResponse:
		return appendTSDBResponse(au(b, tTSDBResponse), m), nil
	case WALCheckpoint:
		return appendWALCheckpoint(au(b, tWALCheckpoint), &m), nil
	case *WALCheckpoint:
		return appendWALCheckpoint(au(b, tWALCheckpoint), m), nil
	case WALStatusRequest:
		return au(b, tWALStatusRequest), nil
	case *WALStatusRequest:
		return au(b, tWALStatusRequest), nil
	case WALStatusResponse:
		return appendWALStatusResponse(au(b, tWALStatusResponse), &m), nil
	case *WALStatusResponse:
		return appendWALStatusResponse(au(b, tWALStatusResponse), m), nil
	default:
		return b, transport.ErrUnsupportedType
	}
}

func decMessage(r *reader) (any, error) {
	id := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	var v any
	switch id {
	case tGetRequest:
		v = decGetRequest(r)
	case tGetResponse:
		v = decGetResponse(r)
	case tMultiGetRequest:
		v = decMultiGetRequest(r)
	case tMultiGetResponse:
		v = decMultiGetResponse(r)
	case tPutRequest:
		v = decPutRequest(r)
	case tPutResponse:
		v = PutResponse{Rejected: r.bool()}
	case tDeleteRequest:
		v = DeleteRequest{Key: r.bytes(), Version: r.ts()}
	case tDeleteResponse:
		v = DeleteResponse{Rejected: r.bool()}
	case tReplicateData:
		v = decReplicateData(r)
	case tReplicated:
		rep := Replicated{Epoch: r.uvarint()}
		if r.err != nil {
			return nil, r.err
		}
		inner, err := decMessage(r)
		if err != nil {
			return nil, err
		}
		rep.Msg = inner
		v = rep
	case tAck:
		v = Ack{}
	case tBatchAck:
		v = decBatchAck(r)
	case tWatermarkBroadcast:
		v = WatermarkBroadcast{Client: uint32(r.uvarint()), Ts: r.ts()}
	case tPrepareRequest:
		v = decPrepareRequest(r)
	case tPrepareResponse:
		v = PrepareResponse{OK: r.bool(), Reason: r.str(), Code: AbortReason(r.varint())}
	case tDecisionRequest:
		v = DecisionRequest{ID: decTxnID(r), Commit: r.bool()}
	case tDecisionResponse:
		v = DecisionResponse{}
	case tStatusRequest:
		v = StatusRequest{ID: decTxnID(r)}
	case tStatusResponse:
		v = StatusResponse{Status: TxnStatus(r.varint())}
	case tReplicatePrepare:
		v = ReplicatePrepare{Record: decTxnRecord(r)}
	case tReplicateDecision:
		v = ReplicateDecision{ID: decTxnID(r), Commit: r.bool()}
	case tLeaseRequest:
		v = LeaseRequest{Primary: r.str(), Expiry: r.ts()}
	case tLeaseResponse:
		v = LeaseResponse{Granted: r.bool()}
	case tRecoveryPullRequest:
		v = RecoveryPullRequest{Since: r.ts()}
	case tRecoveryPullResponse:
		v = decRecoveryPullResponse(r)
	case tPromoteRequest:
		v = PromoteRequest{}
	case tPromoteResponse:
		v = PromoteResponse{}
	case tStatsRequest:
		v = StatsRequest{Detailed: r.bool()}
	case tStatsResponse:
		v = decStatsResponse(r)
	case tTraceRequest:
		v = TraceRequest{TraceID: r.uvarint()}
	case tTraceResponse:
		v = decTraceResponse(r)
	case tTimeHealthRequest:
		v = TimeHealthRequest{}
	case tTimeHealthResponse:
		v = decTimeHealthResponse(r)
	case tAuditRequest:
		v = AuditRequest{}
	case tAuditResponse:
		v = decAuditResponse(r)
	case tTSDBRequest:
		v = decTSDBRequest(r)
	case tTSDBResponse:
		v = decTSDBResponse(r)
	case tWALCheckpoint:
		v = decWALCheckpoint(r)
	case tWALStatusRequest:
		v = WALStatusRequest{}
	case tWALStatusResponse:
		v = decWALStatusResponse(r)
	default:
		return nil, fmt.Errorf("%w: %d", errUnknownType, id)
	}
	if r.err != nil {
		return nil, r.err
	}
	return v, nil
}

// ---- per-message field encodings ----

func appendGetRequest(b []byte, m *GetRequest) []byte {
	b = aBytes(b, m.Key)
	b = aTs(b, m.At)
	return aBool(b, m.AnyReplica)
}

func decGetRequest(r *reader) GetRequest {
	return GetRequest{Key: r.bytes(), At: r.ts(), AnyReplica: r.bool()}
}

func appendGetResponse(b []byte, m *GetResponse) []byte {
	b = aBytes(b, m.Val)
	b = aTs(b, m.Version)
	var flags byte
	if m.Found {
		flags |= 1
	}
	if m.PreparedAtOrBefore {
		flags |= 2
	}
	if m.SnapshotMiss {
		flags |= 4
	}
	return append(b, flags)
}

func decGetResponse(r *reader) GetResponse {
	m := GetResponse{Val: r.bytes(), Version: r.ts()}
	flags := byte(0)
	if len(r.b) >= 1 && r.err == nil {
		flags = r.b[0]
		r.b = r.b[1:]
	} else if r.err == nil {
		r.err = errTruncated
	}
	m.Found = flags&1 != 0
	m.PreparedAtOrBefore = flags&2 != 0
	m.SnapshotMiss = flags&4 != 0
	return m
}

func appendMultiGetRequest(b []byte, m *MultiGetRequest) []byte {
	b = aLen(b, len(m.Keys), m.Keys == nil)
	for _, k := range m.Keys {
		b = aBytes(b, k)
	}
	b = aTs(b, m.At)
	return aBool(b, m.AnyReplica)
}

func decMultiGetRequest(r *reader) MultiGetRequest {
	n, isNil := r.length()
	m := MultiGetRequest{}
	if !isNil {
		m.Keys = make([][]byte, n)
		for i := range m.Keys {
			m.Keys[i] = r.bytes()
		}
	}
	m.At = r.ts()
	m.AnyReplica = r.bool()
	return m
}

func appendMultiGetResponse(b []byte, m *MultiGetResponse) []byte {
	b = aLen(b, len(m.Items), m.Items == nil)
	for i := range m.Items {
		b = appendGetResponse(b, &m.Items[i])
	}
	return b
}

func decMultiGetResponse(r *reader) MultiGetResponse {
	n, isNil := r.length()
	m := MultiGetResponse{}
	if !isNil {
		m.Items = make([]GetResponse, n)
		for i := range m.Items {
			m.Items[i] = decGetResponse(r)
		}
	}
	return m
}

func appendPutRequest(b []byte, m *PutRequest) []byte {
	b = aBytes(b, m.Key)
	b = aBytes(b, m.Val)
	return aTs(b, m.Version)
}

func decPutRequest(r *reader) PutRequest {
	return PutRequest{Key: r.bytes(), Val: r.bytes(), Version: r.ts()}
}

func appendDeleteRequest(b []byte, m *DeleteRequest) []byte {
	b = aBytes(b, m.Key)
	return aTs(b, m.Version)
}

func appendDataOp(b []byte, op *DataOp) []byte {
	b = aBytes(b, op.Key)
	b = aBytes(b, op.Val)
	b = aTs(b, op.Version)
	b = aBool(b, op.Tombstone)
	return aTC(b, op.TC)
}

func decDataOp(r *reader) DataOp {
	return DataOp{Key: r.bytes(), Val: r.bytes(), Version: r.ts(), Tombstone: r.bool(), TC: r.tc()}
}

func appendReplicateData(b []byte, m *ReplicateData) []byte {
	b = aLen(b, len(m.Ops), m.Ops == nil)
	for i := range m.Ops {
		b = appendDataOp(b, &m.Ops[i])
	}
	return b
}

func decReplicateData(r *reader) ReplicateData {
	n, isNil := r.length()
	m := ReplicateData{}
	if !isNil {
		m.Ops = make([]DataOp, n)
		for i := range m.Ops {
			m.Ops[i] = decDataOp(r)
		}
	}
	return m
}

// appendReplicated nests the inner message with the same dispatch; an inner
// type without a v1 codec makes the whole envelope fall back to gob. The
// any-typed field is last, so no inner length prefix is needed.
func appendReplicated(b []byte, m *Replicated) ([]byte, error) {
	b = au(b, m.Epoch)
	return appendMessage(b, m.Msg)
}

func appendBatchAck(b []byte, m *BatchAck) []byte {
	b = aLen(b, len(m.Errs), m.Errs == nil)
	for _, e := range m.Errs {
		b = aStr(b, e)
	}
	return b
}

func decBatchAck(r *reader) BatchAck {
	n, isNil := r.length()
	m := BatchAck{}
	if !isNil {
		m.Errs = make([]string, n)
		for i := range m.Errs {
			m.Errs[i] = r.str()
		}
	}
	return m
}

func appendTxnID(b []byte, id TxnID) []byte {
	b = au(b, uint64(id.Client))
	return au(b, id.Seq)
}

func decTxnID(r *reader) TxnID {
	return TxnID{Client: uint32(r.uvarint()), Seq: r.uvarint()}
}

func appendKVs(b []byte, kvs []KV) []byte {
	b = aLen(b, len(kvs), kvs == nil)
	for i := range kvs {
		b = aBytes(b, kvs[i].Key)
		b = aBytes(b, kvs[i].Val)
	}
	return b
}

func decKVs(r *reader) []KV {
	n, isNil := r.length()
	if isNil {
		return nil
	}
	kvs := make([]KV, n)
	for i := range kvs {
		kvs[i] = KV{Key: r.bytes(), Val: r.bytes()}
	}
	return kvs
}

func appendInts(b []byte, xs []int) []byte {
	b = aLen(b, len(xs), xs == nil)
	for _, x := range xs {
		b = ai(b, int64(x))
	}
	return b
}

func decInts(r *reader) []int {
	n, isNil := r.length()
	if isNil {
		return nil
	}
	xs := make([]int, n)
	for i := range xs {
		xs[i] = int(r.varint())
	}
	return xs
}

func appendPrepareRequest(b []byte, m *PrepareRequest) []byte {
	b = appendTxnID(b, m.ID)
	b = aTs(b, m.CommitTs)
	b = aLen(b, len(m.ReadSet), m.ReadSet == nil)
	for i := range m.ReadSet {
		b = aBytes(b, m.ReadSet[i].Key)
		b = aTs(b, m.ReadSet[i].Version)
	}
	b = appendKVs(b, m.WriteSet)
	return appendInts(b, m.Participants)
}

func decPrepareRequest(r *reader) PrepareRequest {
	m := PrepareRequest{ID: decTxnID(r), CommitTs: r.ts()}
	n, isNil := r.length()
	if !isNil {
		m.ReadSet = make([]ReadKey, n)
		for i := range m.ReadSet {
			m.ReadSet[i] = ReadKey{Key: r.bytes(), Version: r.ts()}
		}
	}
	m.WriteSet = decKVs(r)
	m.Participants = decInts(r)
	return m
}

func appendPrepareResponse(b []byte, m *PrepareResponse) []byte {
	b = aBool(b, m.OK)
	b = aStr(b, m.Reason)
	return ai(b, int64(m.Code))
}

func appendTxnRecord(b []byte, m *TxnRecord) []byte {
	b = appendTxnID(b, m.ID)
	b = aTs(b, m.CommitTs)
	b = appendKVs(b, m.WriteSet)
	b = appendInts(b, m.Participants)
	return ai(b, int64(m.Status))
}

func decTxnRecord(r *reader) TxnRecord {
	return TxnRecord{
		ID:           decTxnID(r),
		CommitTs:     r.ts(),
		WriteSet:     decKVs(r),
		Participants: decInts(r),
		Status:       TxnStatus(r.varint()),
	}
}

func appendRecoveryPullResponse(b []byte, m *RecoveryPullResponse) []byte {
	b = aLen(b, len(m.Txns), m.Txns == nil)
	for i := range m.Txns {
		b = appendTxnRecord(b, &m.Txns[i])
	}
	b = aLen(b, len(m.Data), m.Data == nil)
	for i := range m.Data {
		b = appendDataOp(b, &m.Data[i])
	}
	return aTs(b, m.LeaseExpiry)
}

func decRecoveryPullResponse(r *reader) RecoveryPullResponse {
	m := RecoveryPullResponse{}
	n, isNil := r.length()
	if !isNil {
		m.Txns = make([]TxnRecord, n)
		for i := range m.Txns {
			m.Txns[i] = decTxnRecord(r)
		}
	}
	n, isNil = r.length()
	if !isNil {
		m.Data = make([]DataOp, n)
		for i := range m.Data {
			m.Data[i] = decDataOp(r)
		}
	}
	m.LeaseExpiry = r.ts()
	return m
}

func appendWALCheckpoint(b []byte, m *WALCheckpoint) []byte {
	b = au(b, m.Epoch)
	b = aTs(b, m.Watermark)
	b = aStr(b, m.LeasePrimary)
	b = aTs(b, m.LeaseExpiry)
	b = aLen(b, len(m.Txns), m.Txns == nil)
	for i := range m.Txns {
		b = appendTxnRecord(b, &m.Txns[i])
	}
	b = aLen(b, len(m.Data), m.Data == nil)
	for i := range m.Data {
		b = appendDataOp(b, &m.Data[i])
	}
	return b
}

func decWALCheckpoint(r *reader) WALCheckpoint {
	m := WALCheckpoint{Epoch: r.uvarint(), Watermark: r.ts(), LeasePrimary: r.str(), LeaseExpiry: r.ts()}
	n, isNil := r.length()
	if !isNil {
		m.Txns = make([]TxnRecord, n)
		for i := range m.Txns {
			m.Txns[i] = decTxnRecord(r)
		}
	}
	n, isNil = r.length()
	if !isNil {
		m.Data = make([]DataOp, n)
		for i := range m.Data {
			m.Data[i] = decDataOp(r)
		}
	}
	return m
}

func appendWALStatusResponse(b []byte, m *WALStatusResponse) []byte {
	b = aStr(b, m.Addr)
	b = aBool(b, m.Enabled)
	b = au(b, m.AppendedLSN)
	b = au(b, m.DurableLSN)
	b = au(b, m.CheckpointLSN)
	b = ai(b, int64(m.Segments))
	b = ai(b, m.Bytes)
	b = ai(b, m.Fsyncs)
	b = ai(b, m.ReplayRecords)
	return ai(b, m.ReplayNs)
}

func decWALStatusResponse(r *reader) WALStatusResponse {
	return WALStatusResponse{
		Addr:          r.str(),
		Enabled:       r.bool(),
		AppendedLSN:   r.uvarint(),
		DurableLSN:    r.uvarint(),
		CheckpointLSN: r.uvarint(),
		Segments:      int(r.varint()),
		Bytes:         r.varint(),
		Fsyncs:        r.varint(),
		ReplayRecords: r.varint(),
		ReplayNs:      r.varint(),
	}
}

// ---- obs/clock composites (stats, traces, health, audit) ----

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func appendI64Map(b []byte, m map[string]int64) []byte {
	b = aLen(b, len(m), m == nil)
	for _, k := range sortedKeys(m) {
		b = aStr(b, k)
		b = ai(b, m[k])
	}
	return b
}

func decI64Map(r *reader) map[string]int64 {
	n, isNil := r.length()
	if isNil {
		return nil
	}
	m := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		k := r.str()
		m[k] = r.varint()
		if r.err != nil {
			return nil
		}
	}
	return m
}

func appendHistSnapshot(b []byte, h *obs.HistogramSnapshot) []byte {
	b = au(b, h.Count)
	b = ai(b, h.Sum)
	b = aLen(b, len(h.Buckets), h.Buckets == nil)
	for i := range h.Buckets {
		b = ai(b, int64(h.Buckets[i].Idx))
		b = au(b, h.Buckets[i].N)
		b = au(b, h.Buckets[i].Exemplar)
	}
	return b
}

func decHistSnapshot(r *reader) obs.HistogramSnapshot {
	h := obs.HistogramSnapshot{Count: r.uvarint(), Sum: r.varint()}
	n, isNil := r.length()
	if !isNil {
		h.Buckets = make([]obs.Bucket, n)
		for i := range h.Buckets {
			h.Buckets[i] = obs.Bucket{Idx: int32(r.varint()), N: r.uvarint(), Exemplar: r.uvarint()}
		}
	}
	return h
}

func appendSnapshot(b []byte, s *obs.Snapshot) []byte {
	b = appendI64Map(b, s.Counters)
	b = appendI64Map(b, s.Gauges)
	b = aLen(b, len(s.Hists), s.Hists == nil)
	for _, k := range sortedKeys(s.Hists) {
		h := s.Hists[k]
		b = aStr(b, k)
		b = appendHistSnapshot(b, &h)
	}
	return b
}

func decSnapshot(r *reader) obs.Snapshot {
	s := obs.Snapshot{Counters: decI64Map(r), Gauges: decI64Map(r)}
	n, isNil := r.length()
	if !isNil {
		s.Hists = make(map[string]obs.HistogramSnapshot, n)
		for i := 0; i < n; i++ {
			k := r.str()
			s.Hists[k] = decHistSnapshot(r)
			if r.err != nil {
				return s
			}
		}
	}
	return s
}

func appendStatsResponse(b []byte, m *StatsResponse) []byte {
	b = aStr(b, m.Addr)
	b = ai(b, int64(m.Shard))
	b = aBool(b, m.Primary)
	b = ai(b, m.Gets)
	b = ai(b, m.Puts)
	b = ai(b, m.Deletes)
	b = ai(b, m.Prepares)
	b = ai(b, m.Commits)
	b = ai(b, m.Aborts)
	b = ai(b, m.ReplOps)
	b = aTs(b, m.Watermark)
	return appendSnapshot(b, &m.Obs)
}

func decStatsResponse(r *reader) StatsResponse {
	return StatsResponse{
		Addr:      r.str(),
		Shard:     int(r.varint()),
		Primary:   r.bool(),
		Gets:      r.varint(),
		Puts:      r.varint(),
		Deletes:   r.varint(),
		Prepares:  r.varint(),
		Commits:   r.varint(),
		Aborts:    r.varint(),
		ReplOps:   r.varint(),
		Watermark: r.ts(),
		Obs:       decSnapshot(r),
	}
}

func appendHealth(b []byte, h *clock.Health) []byte {
	b = ai(b, h.OffsetNs)
	b = ai(b, h.ResidualNs)
	b = ai(b, h.DriftNs)
	b = ai(b, h.SinceSyncNs)
	return ai(b, h.UncertaintyNs)
}

func decHealth(r *reader) clock.Health {
	return clock.Health{
		OffsetNs:      r.varint(),
		ResidualNs:    r.varint(),
		DriftNs:       r.varint(),
		SinceSyncNs:   r.varint(),
		UncertaintyNs: r.varint(),
	}
}

func appendTraceResponse(b []byte, m *TraceResponse) []byte {
	b = aStr(b, m.Addr)
	b = aLen(b, len(m.Spans), m.Spans == nil)
	for i := range m.Spans {
		sp := &m.Spans[i]
		b = au(b, sp.TraceID)
		b = au(b, sp.SpanID)
		b = au(b, sp.Parent)
		b = aStr(b, sp.Node)
		b = aStr(b, sp.Name)
		b = ai(b, sp.Start)
		b = ai(b, sp.End)
		b = aStr(b, sp.Outcome)
	}
	return appendHealth(b, &m.Clock)
}

func decTraceResponse(r *reader) TraceResponse {
	m := TraceResponse{Addr: r.str()}
	n, isNil := r.length()
	if !isNil {
		m.Spans = make([]obs.SpanRecord, n)
		for i := range m.Spans {
			m.Spans[i] = obs.SpanRecord{
				TraceID: r.uvarint(),
				SpanID:  r.uvarint(),
				Parent:  r.uvarint(),
				Node:    r.str(),
				Name:    r.str(),
				Start:   r.varint(),
				End:     r.varint(),
				Outcome: r.str(),
			}
		}
	}
	m.Clock = decHealth(r)
	return m
}

func appendTimeHealthResponse(b []byte, m *TimeHealthResponse) []byte {
	b = aStr(b, m.Addr)
	b = ai(b, int64(m.Shard))
	b = aBool(b, m.Primary)
	b = appendHealth(b, &m.Clock)
	b = aTs(b, m.Now)
	b = aTs(b, m.Watermark)
	return ai(b, m.WatermarkLagNs)
}

func decTimeHealthResponse(r *reader) TimeHealthResponse {
	return TimeHealthResponse{
		Addr:           r.str(),
		Shard:          int(r.varint()),
		Primary:        r.bool(),
		Clock:          decHealth(r),
		Now:            r.ts(),
		Watermark:      r.ts(),
		WatermarkLagNs: r.varint(),
	}
}

func appendAuditResponse(b []byte, m *AuditResponse) []byte {
	b = aStr(b, m.Addr)
	b = aBool(b, m.Enabled)
	b = aStr(b, m.Profile)
	b = ai(b, int64(m.Pending))
	b = ai(b, int64(m.UnknownRetained))
	b = ai(b, m.WindowsChecked)
	b = ai(b, m.WindowsSkipped)
	b = ai(b, m.Convictions)
	b = ai(b, m.EpsilonViolations)
	b = aTs(b, m.LastCut)
	b = aLen(b, len(m.Artifacts), m.Artifacts == nil)
	for _, a := range m.Artifacts {
		b = aBytes(b, a)
	}
	return b
}

func decAuditResponse(r *reader) AuditResponse {
	m := AuditResponse{
		Addr:              r.str(),
		Enabled:           r.bool(),
		Profile:           r.str(),
		Pending:           int(r.varint()),
		UnknownRetained:   int(r.varint()),
		WindowsChecked:    r.varint(),
		WindowsSkipped:    r.varint(),
		Convictions:       r.varint(),
		EpsilonViolations: r.varint(),
		LastCut:           r.ts(),
	}
	n, isNil := r.length()
	if !isNil {
		m.Artifacts = make([][]byte, n)
		for i := range m.Artifacts {
			m.Artifacts[i] = r.bytes()
		}
	}
	return m
}

func appendTSDBRequest(b []byte, m *TSDBRequest) []byte {
	b = aLen(b, len(m.Patterns), m.Patterns == nil)
	for _, p := range m.Patterns {
		b = aStr(b, p)
	}
	return ai(b, int64(m.LastN))
}

func decTSDBRequest(r *reader) TSDBRequest {
	var m TSDBRequest
	n, isNil := r.length()
	if !isNil {
		m.Patterns = make([]string, n)
		for i := range m.Patterns {
			m.Patterns[i] = r.str()
		}
	}
	m.LastN = int(r.varint())
	return m
}

func appendTSDBResponse(b []byte, m *TSDBResponse) []byte {
	b = aStr(b, m.Addr)
	b = ai(b, m.IntervalNs)
	b = aLen(b, len(m.Series), m.Series == nil)
	for i := range m.Series {
		s := &m.Series[i]
		b = aStr(b, s.Name)
		b = ai(b, s.Seq)
		b = ai(b, s.First)
		b = aLen(b, len(s.Deltas), s.Deltas == nil)
		for _, d := range s.Deltas {
			b = ai(b, d)
		}
	}
	return b
}

func decTSDBResponse(r *reader) TSDBResponse {
	m := TSDBResponse{Addr: r.str(), IntervalNs: r.varint()}
	n, isNil := r.length()
	if isNil {
		return m
	}
	m.Series = make([]obs.SeriesDump, n)
	for i := range m.Series {
		s := &m.Series[i]
		s.Name = r.str()
		s.Seq = r.varint()
		s.First = r.varint()
		dn, dNil := r.length()
		if dNil {
			continue
		}
		s.Deltas = make([]int64, dn)
		for j := range s.Deltas {
			s.Deltas[j] = r.varint()
		}
	}
	return m
}

func init() {
	transport.SetCodec(Codec)
}
