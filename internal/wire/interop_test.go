package wire

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/transport"
)

// TestTCPMixedCodecInterop runs every client×server codec pairing over real
// TCP: a gob-only client against a codec-v1 server, a v1 client against a
// gob-forced server, and both homogeneous pairs. The server answers in the
// codec the request arrived with (unless forced), so every combination must
// round-trip every message unchanged — this is the mixed-version-cluster
// guarantee behind the per-frame codec tag.
func TestTCPMixedCodecInterop(t *testing.T) {
	echo := transport.HandlerFunc(func(ctx context.Context, req any) (any, error) {
		return req, nil
	})
	matrix := []struct {
		name              string
		clientGob, srvGob bool
	}{
		{"v1-client/v1-server", false, false},
		{"gob-client/v1-server", true, false},
		{"v1-client/gob-server", false, true},
		{"gob-client/gob-server", true, true},
	}
	for _, m := range matrix {
		t.Run(m.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			srv, err := transport.NewTCPServerOpts("127.0.0.1:0", echo, transport.TCPServerOptions{ForceGob: m.srvGob, Metrics: reg})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			cli := transport.NewTCPClientOpts(transport.TCPClientOptions{ForceGob: m.clientGob, Metrics: reg})
			defer cli.Close()
			for _, msg := range codecExemplars() {
				resp, err := cli.Call(context.Background(), srv.Addr(), msg)
				if err != nil {
					t.Fatalf("%T: %v", msg, err)
				}
				if !reflect.DeepEqual(resp, msg) {
					t.Errorf("%T: echo mismatch\n got %#v\nwant %#v", msg, resp, msg)
				}
			}
			snap := reg.Snapshot()
			bytesFor := func(codec string) int64 {
				var n int64
				for _, dir := range []string{"tx", "rx"} {
					n += snap.Counters[fmt.Sprintf(`wire_bytes_total{dir=%q,codec=%q}`, dir, codec)]
				}
				return n
			}
			v1Bytes, gobBytes := bytesFor("v1"), bytesFor("gob")
			if m.clientGob && v1Bytes != 0 {
				t.Errorf("gob client produced %d v1 bytes", v1Bytes)
			}
			if !m.clientGob && !m.srvGob && gobBytes != 0 {
				t.Errorf("v1 pairing produced %d gob bytes", gobBytes)
			}
			if v1Bytes+gobBytes == 0 {
				t.Error("wire_bytes_total counters never moved")
			}
		})
	}
}

// TestTCPUnregisteredTypeFallsBack checks a message without a v1 codec
// (transport-test-only type) still travels — over the gob frame tag — on a
// connection whose other traffic is codec v1.
func TestTCPUnregisteredTypeFallsBack(t *testing.T) {
	type oddball struct{ N int }
	transport.RegisterType(oddball{})
	echo := transport.HandlerFunc(func(ctx context.Context, req any) (any, error) { return req, nil })
	srv, err := transport.NewTCPServer("127.0.0.1:0", echo)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := transport.NewTCPClient()
	defer cli.Close()
	if resp, err := cli.Call(context.Background(), srv.Addr(), GetRequest{Key: []byte("k")}); err != nil {
		t.Fatal(err)
	} else if !reflect.DeepEqual(resp, GetRequest{Key: []byte("k")}) {
		t.Fatalf("v1 message mangled: %#v", resp)
	}
	if resp, err := cli.Call(context.Background(), srv.Addr(), oddball{N: 41}); err != nil {
		t.Fatal(err)
	} else if resp.(oddball).N != 41 {
		t.Fatalf("gob-fallback message mangled: %#v", resp)
	}
}
