package wire

import (
	"bytes"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/transport"
)

// codecExemplars returns one populated value per registered message type.
// Every slice/map is either nil or non-empty: codec v1 preserves the
// nil/empty distinction, gob does not, and the equivalence test below runs
// both paths over the same inputs.
func codecExemplars() []any {
	ts := func(t int64, c uint32) clock.Timestamp { return clock.Timestamp{Ticks: t, Client: c} }
	tc := obs.TraceContext{TraceID: 9, SpanID: 8, Sampled: true}
	return []any{
		GetRequest{Key: []byte("k1"), At: ts(100, 7), AnyReplica: true},
		GetResponse{Val: []byte("v"), Version: ts(42, 3), Found: true, PreparedAtOrBefore: true},
		MultiGetRequest{Keys: [][]byte{[]byte("a"), []byte("bb"), []byte("c")}, At: ts(5, 1)},
		MultiGetResponse{Items: []GetResponse{{Val: []byte("x"), Version: ts(1, 2), Found: true}, {SnapshotMiss: true}}},
		PutRequest{Key: []byte("k"), Val: []byte("val"), Version: ts(-3, 9)},
		PutResponse{Rejected: true},
		DeleteRequest{Key: []byte("dk"), Version: ts(77, 2)},
		DeleteResponse{},
		ReplicateData{Ops: []DataOp{{Key: []byte("rk"), Val: []byte("rv"), Version: ts(11, 4), Tombstone: true, TC: tc}}},
		Replicated{Epoch: 3, Msg: ReplicateData{Ops: []DataOp{{Key: []byte("n"), Version: ts(1, 1)}}}},
		Ack{},
		BatchAck{Errs: []string{"", "boom"}},
		WatermarkBroadcast{Client: 12, Ts: ts(99, 12)},
		PrepareRequest{
			ID: TxnID{Client: 1, Seq: 2}, CommitTs: ts(1000, 1),
			ReadSet:  []ReadKey{{Key: []byte("r"), Version: ts(9, 1)}},
			WriteSet: []KV{{Key: []byte("w"), Val: []byte("wv")}}, Participants: []int{0, 2},
		},
		PrepareResponse{OK: false, Reason: "conflict", Code: AbortLateWrite},
		DecisionRequest{ID: TxnID{Client: 3, Seq: 4}, Commit: true},
		DecisionResponse{},
		StatusRequest{ID: TxnID{Client: 5, Seq: 6}},
		StatusResponse{Status: StatusCommitted},
		ReplicatePrepare{Record: TxnRecord{
			ID: TxnID{Client: 7, Seq: 8}, CommitTs: ts(123, 7),
			WriteSet: []KV{{Key: []byte("tk"), Val: []byte("tv")}}, Participants: []int{1}, Status: StatusPrepared,
		}},
		ReplicateDecision{ID: TxnID{Client: 9, Seq: 10}},
		LeaseRequest{Primary: "p:1", Expiry: ts(555, 1)},
		LeaseResponse{Granted: true},
		RecoveryPullRequest{Since: ts(1, 1)},
		RecoveryPullResponse{
			Txns:        []TxnRecord{{ID: TxnID{Client: 1, Seq: 1}, CommitTs: ts(4, 1), Status: StatusAborted}},
			Data:        []DataOp{{Key: []byte("d"), Val: []byte("dv"), Version: ts(2, 2)}},
			LeaseExpiry: ts(3, 3),
		},
		PromoteRequest{},
		PromoteResponse{},
		StatsRequest{Detailed: true},
		StatsResponse{
			Addr: "a:1", Shard: 2, Primary: true,
			Gets: 1, Puts: 2, Deletes: 3, Prepares: 4, Commits: 5, Aborts: 6, ReplOps: 7,
			Watermark: ts(88, 1),
			Obs: obs.Snapshot{
				Counters: map[string]int64{"c1": 10, "c2": -2},
				Gauges:   map[string]int64{"g": 5},
				Hists: map[string]obs.HistogramSnapshot{
					"h": {Count: 2, Sum: 30, Buckets: []obs.Bucket{{Idx: 4, N: 2, Exemplar: 19}}},
				},
			},
		},
		TraceRequest{TraceID: 77},
		TraceResponse{
			Addr:  "n1",
			Spans: []obs.SpanRecord{{TraceID: 1, SpanID: 2, Parent: 3, Node: "n1", Name: "get", Start: 10, End: 20, Outcome: "ok"}},
			Clock: clock.Health{OffsetNs: 1, ResidualNs: -2, DriftNs: 3, SinceSyncNs: 4, UncertaintyNs: 5},
		},
		TimeHealthRequest{},
		TimeHealthResponse{
			Addr: "n2", Shard: 1, Clock: clock.Health{OffsetNs: -1},
			Now: ts(50, 2), Watermark: ts(40, 2), WatermarkLagNs: 10,
		},
		AuditRequest{},
		AuditResponse{
			Addr: "n3", Enabled: true, Profile: "DTP", Pending: 1, UnknownRetained: 2,
			WindowsChecked: 3, WindowsSkipped: 4, Convictions: 5, EpsilonViolations: 6,
			LastCut: ts(60, 3), Artifacts: [][]byte{[]byte("{}")},
		},
		TSDBRequest{Patterns: []string{"stage_ledger", "aborts"}, LastN: 30},
		TSDBResponse{
			Addr: "n4", IntervalNs: 1e9,
			Series: []obs.SeriesDump{
				{Name: "milana_commits_total", Seq: 12, First: 100, Deltas: []int64{5, 0, -1}},
				{Name: "go_goroutines", Seq: 12, First: 42},
			},
		},
		WALCheckpoint{
			Epoch: 3, Watermark: ts(90, 1), LeasePrimary: "shard0/r0", LeaseExpiry: ts(95, 1),
			Txns: []TxnRecord{{
				ID: TxnID{Client: 5, Seq: 6}, CommitTs: ts(70, 5),
				WriteSet: []KV{{Key: []byte("k"), Val: []byte("v")}}, Participants: []int{0},
				Status: StatusCommitted,
			}},
			Data: []DataOp{{Key: []byte("a"), Val: []byte("1"), Version: ts(80, 5)}},
		},
		WALStatusRequest{},
		WALStatusResponse{
			Addr: "n5", Enabled: true, AppendedLSN: 12, DurableLSN: 11, CheckpointLSN: 8,
			Segments: 2, Bytes: 4096, Fsyncs: 7, ReplayRecords: 3, ReplayNs: 1500,
		},
	}
}

// TestCodecCoversEveryRegisteredMessage pins the exemplar list to the gob
// registration list: a new wire message cannot ship without a codec-v1
// encoding and an exemplar exercising it.
func TestCodecCoversEveryRegisteredMessage(t *testing.T) {
	want := map[reflect.Type]bool{}
	for _, m := range registeredMessages() {
		want[reflect.TypeOf(m)] = true
	}
	got := map[reflect.Type]bool{}
	for _, m := range codecExemplars() {
		got[reflect.TypeOf(m)] = true
	}
	for ty := range want {
		if !got[ty] {
			t.Errorf("registered message %v has no codec exemplar", ty)
		}
	}
	for ty := range got {
		if !want[ty] {
			t.Errorf("exemplar %v is not a registered message", ty)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, m := range codecExemplars() {
		name := fmt.Sprintf("%T", m)
		buf, err := Codec.Append(nil, m)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		out, err := Codec.Decode(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !reflect.DeepEqual(out, m) {
			t.Errorf("%s: round trip mismatch\n got %#v\nwant %#v", name, out, m)
		}
	}
}

// TestCodecPointerEncodesLikeValue checks *T encodes to the same bytes as T.
func TestCodecPointerEncodesLikeValue(t *testing.T) {
	for _, m := range codecExemplars() {
		val, err := Codec.Append(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		pv := reflect.New(reflect.TypeOf(m))
		pv.Elem().Set(reflect.ValueOf(m))
		ptr, err := Codec.Append(nil, pv.Interface())
		if err != nil {
			t.Fatalf("%T: pointer encode: %v", m, err)
		}
		if !bytes.Equal(val, ptr) {
			t.Errorf("%T: pointer and value encodings differ", m)
		}
	}
}

// TestCodecGobEquivalence runs every exemplar through both the v1 codec and
// the gob fallback and demands identical decoded values: whichever frame tag
// a message travels under, the receiver sees the same thing.
func TestCodecGobEquivalence(t *testing.T) {
	for _, m := range codecExemplars() {
		name := fmt.Sprintf("%T", m)
		buf, err := Codec.Append(nil, m)
		if err != nil {
			t.Fatalf("%s: v1 encode: %v", name, err)
		}
		v1Out, err := Codec.Decode(buf)
		if err != nil {
			t.Fatalf("%s: v1 decode: %v", name, err)
		}

		var gobBuf bytes.Buffer
		holder := m
		if err := gob.NewEncoder(&gobBuf).Encode(&holder); err != nil {
			t.Fatalf("%s: gob encode: %v", name, err)
		}
		var gobOut any
		if err := gob.NewDecoder(&gobBuf).Decode(&gobOut); err != nil {
			t.Fatalf("%s: gob decode: %v", name, err)
		}
		if !reflect.DeepEqual(v1Out, gobOut) {
			t.Errorf("%s: codec paths disagree\n v1 %#v\ngob %#v", name, v1Out, gobOut)
		}
	}
}

func TestCodecUnsupportedType(t *testing.T) {
	type notWire struct{ X int }
	if _, err := Codec.Append(nil, notWire{X: 1}); !errors.Is(err, transport.ErrUnsupportedType) {
		t.Fatalf("err = %v, want ErrUnsupportedType", err)
	}
	// A Replicated envelope around an unsupported inner message must fall
	// back as a whole.
	if _, err := Codec.Append(nil, Replicated{Epoch: 1, Msg: notWire{}}); !errors.Is(err, transport.ErrUnsupportedType) {
		t.Fatalf("nested err = %v, want ErrUnsupportedType", err)
	}
}

func TestCodecDecodeErrors(t *testing.T) {
	if _, err := Codec.Decode(nil); err == nil {
		t.Error("decode of empty payload succeeded")
	}
	if _, err := Codec.Decode([]byte{0xff, 0xff, 0x01}); err == nil {
		t.Error("decode of unknown type id succeeded")
	}
	// Truncated GetRequest: type id present, fields missing.
	if _, err := Codec.Decode([]byte{byte(tGetRequest)}); err == nil {
		t.Error("decode of truncated message succeeded")
	}
	// Implausible collection length must be rejected, not allocated.
	buf, err := Codec.Append(nil, MultiGetRequest{})
	if err != nil {
		t.Fatal(err)
	}
	buf[1] = 0xff // Keys length byte → huge count
	if _, err := Codec.Decode(append(buf, 0xff, 0xff, 0x7f)); err == nil {
		t.Error("decode of oversized collection length succeeded")
	}
	// Trailing garbage after a complete message is a protocol error.
	ok, err := Codec.Append(nil, Ack{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Codec.Decode(append(ok, 0x00)); err == nil {
		t.Error("decode with trailing bytes succeeded")
	}
}

// TestCodecTypeIDsFrozen pins every message type to its on-wire type ID.
// These are part of the persisted wire format: changing one breaks
// mixed-version clusters, so this table is append-only.
func TestCodecTypeIDsFrozen(t *testing.T) {
	want := map[string]uint64{
		"wire.GetRequest":           1,
		"wire.GetResponse":          2,
		"wire.MultiGetRequest":      3,
		"wire.MultiGetResponse":     4,
		"wire.PutRequest":           5,
		"wire.PutResponse":          6,
		"wire.DeleteRequest":        7,
		"wire.DeleteResponse":       8,
		"wire.ReplicateData":        9,
		"wire.Replicated":           10,
		"wire.Ack":                  11,
		"wire.BatchAck":             12,
		"wire.WatermarkBroadcast":   13,
		"wire.PrepareRequest":       14,
		"wire.PrepareResponse":      15,
		"wire.DecisionRequest":      16,
		"wire.DecisionResponse":     17,
		"wire.StatusRequest":        18,
		"wire.StatusResponse":       19,
		"wire.ReplicatePrepare":     20,
		"wire.ReplicateDecision":    21,
		"wire.LeaseRequest":         22,
		"wire.LeaseResponse":        23,
		"wire.RecoveryPullRequest":  24,
		"wire.RecoveryPullResponse": 25,
		"wire.PromoteRequest":       26,
		"wire.PromoteResponse":      27,
		"wire.StatsRequest":         28,
		"wire.StatsResponse":        29,
		"wire.TraceRequest":         30,
		"wire.TraceResponse":        31,
		"wire.TimeHealthRequest":    32,
		"wire.TimeHealthResponse":   33,
		"wire.AuditRequest":         34,
		"wire.AuditResponse":        35,
		"wire.TSDBRequest":          36,
		"wire.TSDBResponse":         37,
		"wire.WALCheckpoint":        38,
		"wire.WALStatusRequest":     39,
		"wire.WALStatusResponse":    40,
	}
	for _, m := range registeredMessages() {
		name := fmt.Sprintf("%T", m)
		if _, ok := m.(Replicated); ok {
			// The zero envelope holds a nil interface, which (like gob) the
			// codec cannot encode; give it a real inner message.
			m = Replicated{Msg: Ack{}}
		}
		buf, err := Codec.Append(nil, m)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		r := reader{b: buf}
		id := r.uvarint()
		if r.err != nil {
			t.Fatalf("%s: no type id", name)
		}
		if want[name] == 0 {
			t.Errorf("%s: missing from the frozen type-id table", name)
		} else if id != want[name] {
			t.Errorf("%s: type id %d, frozen table says %d", name, id, want[name])
		}
	}
}

// TestCodecGoldenBytes freezes the exact on-wire bytes of representative
// messages. A failure here means the wire format changed: that is only
// acceptable for a NEW type id, never a reinterpretation of an existing one
// (see the versioning rules at the top of codec.go).
func TestCodecGoldenBytes(t *testing.T) {
	cases := []struct {
		msg  any
		want string // hex
	}{
		{GetRequest{Key: []byte("key"), At: clock.Timestamp{Ticks: 1000, Client: 7}, AnyReplica: true}, "01046b6579d00f0701"},
		{PutRequest{Key: []byte("k"), Val: []byte("vv"), Version: clock.Timestamp{Ticks: 64, Client: 2}}, "05026b037676800102"},
		{GetResponse{Val: []byte("v"), Version: clock.Timestamp{Ticks: 3, Client: 1}, Found: true}, "020276060101"},
		{ReplicateData{Ops: []DataOp{{Key: []byte("a"), Val: []byte("b"), Version: clock.Timestamp{Ticks: 2, Client: 9}, Tombstone: false, TC: obs.TraceContext{TraceID: 5, SpanID: 6, Sampled: true}}}}, "090202610262040900050601"},
		{PrepareRequest{ID: TxnID{Client: 1, Seq: 2}, CommitTs: clock.Timestamp{Ticks: 10, Client: 1}, ReadSet: []ReadKey{{Key: []byte("r"), Version: clock.Timestamp{Ticks: 9, Client: 1}}}, WriteSet: []KV{{Key: []byte("w"), Val: []byte("x")}}, Participants: []int{0, 2}}, "0e0102140102027212010202770278030004"},
		{DecisionRequest{ID: TxnID{Client: 3, Seq: 4}, Commit: true}, "10030401"},
		{Replicated{Epoch: 7, Msg: Ack{}}, "0a070b"},
		{WatermarkBroadcast{Client: 2, Ts: clock.Timestamp{Ticks: 500, Client: 2}}, "0d02e80702"},
		{WALCheckpoint{Epoch: 2, Watermark: clock.Timestamp{Ticks: 100, Client: 1}, LeasePrimary: "p", LeaseExpiry: clock.Timestamp{Ticks: 110, Client: 1}, Data: []DataOp{{Key: []byte("k"), Val: []byte("v"), Version: clock.Timestamp{Ticks: 90, Client: 1}}}}, "2602c801010170dc01010002026b0276b4010100000000"},
		{WALStatusResponse{Addr: "n5", Enabled: true, AppendedLSN: 12, DurableLSN: 11, CheckpointLSN: 8, Segments: 2, Bytes: 4096, Fsyncs: 7, ReplayRecords: 3, ReplayNs: 1500}, "28026e35010c0b080480400e06b817"},
	}
	for _, c := range cases {
		got, err := Codec.Append(nil, c.msg)
		if err != nil {
			t.Fatalf("%T: encode: %v", c.msg, err)
		}
		if hex.EncodeToString(got) != c.want {
			t.Errorf("%T: golden bytes changed\n got %s\nwant %s", c.msg, hex.EncodeToString(got), c.want)
		}
	}
}
