// Package wire defines every RPC message exchanged between SEMEL/MILANA
// clients and servers. Messages are plain structs so they travel unchanged
// over both the in-process bus and the TCP/gob transport.
package wire

import (
	"fmt"

	"repro/internal/clock"
	"repro/internal/obs"
	"repro/internal/transport"
)

// ---- SEMEL key-value operations (§3) ----

// GetRequest reads the youngest version of Key with timestamp ≤ At.
type GetRequest struct {
	Key []byte
	At  clock.Timestamp
	// AnyReplica permits a backup to serve the read (§4.6: read-write
	// transactions "can read data from the nearest replica and validate
	// at the primary before commit"). Backup reads return no prepared
	// bit and record no read timestamp, so they are NOT safe for
	// client-local validation — the transaction must validate remotely.
	AnyReplica bool
}

// GetResponse carries the version read plus the prepared bit MILANA clients
// use for local validation (§4.3).
type GetResponse struct {
	Val     []byte
	Version clock.Timestamp
	Found   bool
	// PreparedAtOrBefore reports whether the key had a prepared (but not
	// yet committed) version with timestamp ≤ At at read time.
	PreparedAtOrBefore bool
	// SnapshotMiss reports that the snapshot at At is no longer
	// available (single-version backends only); the reader must abort.
	SnapshotMiss bool
}

// MultiGetRequest reads several keys of one shard in a single round trip,
// all at the same snapshot timestamp.
type MultiGetRequest struct {
	Keys       [][]byte
	At         clock.Timestamp
	AnyReplica bool
}

// MultiGetResponse carries one GetResponse per requested key, in order.
type MultiGetResponse struct {
	Items []GetResponse
}

// PutRequest creates a new version of Key (non-transactional SEMEL write).
type PutRequest struct {
	Key     []byte
	Val     []byte
	Version clock.Timestamp
}

// PutResponse reports acceptance. Rejected means the version was older
// than the key's current version (§3.3 at-most-once rule).
type PutResponse struct {
	Rejected bool
}

// DeleteRequest writes a tombstone for Key.
type DeleteRequest struct {
	Key     []byte
	Version clock.Timestamp
}

// DeleteResponse mirrors PutResponse.
type DeleteResponse struct {
	Rejected bool
}

// ---- replication (primary → backup, unordered; §3.2) ----

// DataOp is one replicated version write. TC is the originating request's
// trace context: the replication batcher coalesces ops from many concurrent
// writers into one ReplicateData envelope, so causality must travel per op,
// not per envelope — each op on a backup records its span under the writer
// that produced it.
type DataOp struct {
	Key       []byte
	Val       []byte
	Version   clock.Timestamp
	Tombstone bool
	TC        obs.TraceContext
}

// ReplicateData applies version writes on a backup, in any order.
type ReplicateData struct {
	Ops []DataOp
}

// Replicated wraps primary→backup replication traffic with the sender's
// shard epoch: a replica that has observed a newer epoch rejects the
// message, so a deposed regime's in-flight deliveries cannot retroactively
// mutate state the new primary is already serializing against. The fenced
// operation is not lost — it was f-acknowledged before the failover, so the
// recovery merge (or anti-entropy against the new primary) already carries
// it.
type Replicated struct {
	Epoch uint64
	Msg   any
}

// Ack is the empty success response.
type Ack struct{}

// BatchAck is a backup's per-op response to a batched ReplicateData: Errs[i]
// is the error string for Ops[i], or "" if that op applied cleanly. A nil
// Errs slice means every op applied. Per-op granularity lets the primary's
// replication batcher demultiplex acknowledgements, so one rejected op does
// not fail its batchmates.
type BatchAck struct {
	Errs []string
}

// ---- watermarks (§3.1, §4.4) ----

// WatermarkBroadcast reports a client's latest decided timestamp.
type WatermarkBroadcast struct {
	Client uint32
	Ts     clock.Timestamp
}

// ---- MILANA transactions (§4) ----

// TxnID names a transaction: coordinating client plus a client-local
// sequence number.
type TxnID struct {
	Client uint32
	Seq    uint64
}

// String renders the ID as "client.seq".
func (id TxnID) String() string { return fmt.Sprintf("%d.%d", id.Client, id.Seq) }

// TraceID derives the deterministic trace ID of this transaction's spans:
// anyone holding the TxnID (e.g. `milctl trace <client.seq>`) can compute it
// without a lookup. The top bit keeps it disjoint from SpanStore.NextID.
func (id TxnID) TraceID() uint64 {
	return 1<<63 | uint64(id.Client)<<40 | (id.Seq & (1<<40 - 1))
}

// TxnStatus is a transaction's state in a primary's transaction table.
type TxnStatus int

// Transaction states, in the CTP sense of §4.5.
const (
	StatusUnknown TxnStatus = iota
	StatusPrepared
	StatusCommitted
	StatusAborted
)

// String names the status.
func (s TxnStatus) String() string {
	switch s {
	case StatusPrepared:
		return "PREPARED"
	case StatusCommitted:
		return "COMMITTED"
	case StatusAborted:
		return "ABORTED"
	default:
		return "UNKNOWN"
	}
}

// KV is one buffered transactional write.
type KV struct {
	Key []byte
	Val []byte
}

// ReadKey is one read-set entry: the key and the version the client read.
type ReadKey struct {
	Key     []byte
	Version clock.Timestamp
}

// PrepareRequest is phase one of 2PC, sent to the primary of each
// participant shard with that shard's slice of the read and write sets
// (§4.2).
type PrepareRequest struct {
	ID       TxnID
	CommitTs clock.Timestamp
	ReadSet  []ReadKey
	WriteSet []KV
	// Participants lists all shards involved, for recovery (§4.5).
	Participants []int
}

// AbortReason classifies why validation failed (Algorithm 1's branches),
// for instrumentation.
type AbortReason int

// Abort reasons. The "Late" reasons are the clock-skew-sensitive ones: a
// commit timestamp that lost the race against a later read or commit.
const (
	AbortNone          AbortReason = iota
	AbortReadPrepared              // read-set key has a prepared version (line 3)
	AbortReadStale                 // read-set version no longer latest (line 5)
	AbortWritePrepared             // write-set key has a prepared version (line 11)
	AbortLateWriteRead             // key read at ts ≥ commit ts (line 13)
	AbortLateWrite                 // committed version ts ≥ commit ts (line 15)
	AbortOther
)

// NumAbortReasons sizes per-reason counters.
const NumAbortReasons = int(AbortOther) + 1

// String names the reason.
func (r AbortReason) String() string {
	switch r {
	case AbortNone:
		return "none"
	case AbortReadPrepared:
		return "read-prepared"
	case AbortReadStale:
		return "read-stale"
	case AbortWritePrepared:
		return "write-prepared"
	case AbortLateWriteRead:
		return "late-write-vs-read"
	case AbortLateWrite:
		return "late-write-vs-commit"
	default:
		return "other"
	}
}

// PrepareResponse is a participant's vote.
type PrepareResponse struct {
	OK     bool
	Reason string
	Code   AbortReason
}

// DecisionRequest is phase two: the coordinator's commit/abort decision.
type DecisionRequest struct {
	ID     TxnID
	Commit bool
}

// DecisionResponse acknowledges a decision.
type DecisionResponse struct{}

// StatusRequest queries a participant for a transaction's status
// (Cooperative Termination Protocol, §4.5).
type StatusRequest struct {
	ID TxnID
}

// StatusResponse carries the participant's view.
type StatusResponse struct {
	Status TxnStatus
}

// TxnRecord is the transaction-table entry replicated to backups.
type TxnRecord struct {
	ID           TxnID
	CommitTs     clock.Timestamp
	WriteSet     []KV
	Participants []int
	Status       TxnStatus
}

// ReplicatePrepare ships a prepared transaction record to a backup.
type ReplicatePrepare struct {
	Record TxnRecord
}

// ReplicateDecision ships a commit/abort decision to a backup, which
// applies the write set it stored at prepare time.
type ReplicateDecision struct {
	ID     TxnID
	Commit bool
}

// ---- recovery and leases (§4.5) ----

// LeaseRequest renews the primary's read lease on a backup until Expiry
// (backup-local clock).
type LeaseRequest struct {
	Primary string
	Expiry  clock.Timestamp
}

// LeaseResponse grants or refuses the lease.
type LeaseResponse struct {
	Granted bool
}

// RecoveryPullRequest asks a replica for everything a new primary needs to
// rebuild shard state.
type RecoveryPullRequest struct {
	// Since bounds the data returned: versions at or below this
	// timestamp are already safe everywhere (watermark).
	Since clock.Timestamp
}

// RecoveryPullResponse is a replica's full contribution to the merge of
// Algorithm 2.
type RecoveryPullResponse struct {
	Txns        []TxnRecord
	Data        []DataOp
	LeaseExpiry clock.Timestamp
}

// StatsRequest asks a replica for its operation counters and, when
// Detailed is set, its full metrics snapshot (histograms included).
type StatsRequest struct {
	Detailed bool
}

// StatsResponse is a replica's counter snapshot. Obs carries the replica's
// full obs.Registry snapshot — latency histograms, abort-reason counters,
// device gauges — when the request asked for detail; snapshots from many
// replicas merge client-side (obs.Snapshot.Merge) into cluster-wide
// distributions.
type StatsResponse struct {
	Addr      string
	Shard     int
	Primary   bool
	Gets      int64
	Puts      int64
	Deletes   int64
	Prepares  int64
	Commits   int64
	Aborts    int64
	ReplOps   int64
	Watermark clock.Timestamp
	Obs       obs.Snapshot
}

// TraceRequest asks a replica for its retained spans of one trace.
type TraceRequest struct {
	TraceID uint64
}

// TraceResponse carries the replica's spans — stamped with its own, possibly
// skewed, clock — plus its clock-health estimate so the collector can align
// them and annotate the residual uncertainty.
type TraceResponse struct {
	Addr  string
	Spans []obs.SpanRecord
	Clock clock.Health
}

// TimeHealthRequest asks a replica for its time-health report.
type TimeHealthRequest struct{}

// TimeHealthResponse is one node's time-health report: clock sync state,
// its current clock reading, and how far its watermark trails its clock
// (the window of replicated-but-not-yet-GC-safe versions, §3.1).
type TimeHealthResponse struct {
	Addr    string
	Shard   int
	Primary bool
	Clock   clock.Health
	Now     clock.Timestamp
	// Watermark is the node's current watermark; WatermarkLagNs is
	// Now.Ticks - Watermark.Ticks (0 when no watermark has been observed).
	Watermark      clock.Timestamp
	WatermarkLagNs int64
}

// AuditRequest asks a replica for its online-audit state: counters plus the
// retained flight-recorder artifacts.
type AuditRequest struct{}

// AuditResponse is a replica's audit report. Artifacts carries the
// flight-recorder dumps JSON-encoded (audit.Artifact), oldest first — wire
// cannot name the audit types directly (audit builds on check, which builds
// on wire), so they travel as opaque blobs and are decoded by the tools
// that display them.
type AuditResponse struct {
	Addr    string
	Enabled bool
	Profile string
	// Pending is the auditor's buffered (not yet truncated) transaction
	// count; UnknownRetained counts outcome-unknown transactions retained
	// indefinitely.
	Pending         int
	UnknownRetained int
	// WindowsChecked / WindowsSkipped count closed windows by whether the
	// sampling coin ran the checker on them.
	WindowsChecked int64
	WindowsSkipped int64
	// Convictions counts windows the checker found non-serializable;
	// EpsilonViolations counts commit timestamps that exceeded the
	// clock-uncertainty bound.
	Convictions       int64
	EpsilonViolations int64
	// LastCut is the timestamp of the most recent window truncation.
	LastCut   clock.Timestamp
	Artifacts [][]byte
}

// TSDBRequest asks a replica for recent samples from its embedded
// time-series store. Patterns are substring filters over series names (none
// = every series); LastN caps how many samples each series returns (0 = the
// full retained window).
type TSDBRequest struct {
	Patterns []string
	LastN    int
}

// TSDBResponse carries the matching series, delta-encoded exactly as the
// store keeps them (obs.SeriesDump). IntervalNs is the sampling period, so
// a consumer can put wall-time on the x axis; zero means no store attached.
type TSDBResponse struct {
	Addr       string
	IntervalNs int64
	Series     []obs.SeriesDump
}

// PromoteRequest tells a backup it is now the primary of its shard; it
// triggers the recovery merge before the new primary serves traffic.
type PromoteRequest struct{}

// PromoteResponse acknowledges completed recovery.
type PromoteResponse struct{}

// ---- durability (write-ahead log checkpoints + recovery observability) ----

// WALCheckpoint is the snapshot a replica writes as its write-ahead-log
// checkpoint: everything needed to rebuild the server without replaying the
// records the checkpoint covers. It never crosses the network — it is
// framed into a checkpoint file — but it rides the frozen codec v1 so
// on-disk state is as version-stable as the wire.
type WALCheckpoint struct {
	// Epoch is the replication epoch at checkpoint time.
	Epoch uint64
	// Watermark is the GC watermark; versions at or below it are safe
	// everywhere and the backend may keep only the youngest.
	Watermark clock.Timestamp
	// LeasePrimary/LeaseExpiry capture the read lease this replica had
	// granted (backups), so a restart cannot forget a promise it made.
	LeasePrimary string
	LeaseExpiry  clock.Timestamp
	// Txns is the prepared/decided transaction table (Algorithm 2 input).
	Txns []TxnRecord
	// Data is the full multi-version store above the watermark.
	Data []DataOp
}

// WALStatusRequest asks a replica for its write-ahead-log state.
type WALStatusRequest struct{}

// WALStatusResponse reports a replica's durability state: log position,
// checkpoint coverage, and what the last cold-start replay cost.
type WALStatusResponse struct {
	Addr    string
	Enabled bool
	// AppendedLSN/DurableLSN/CheckpointLSN are the log positions: last
	// assigned, last fsynced, and last covered by a checkpoint.
	AppendedLSN   uint64
	DurableLSN    uint64
	CheckpointLSN uint64
	Segments      int
	Bytes         int64
	Fsyncs        int64
	// ReplayRecords/ReplayNs describe the replica's last cold-start
	// recovery (zero when the process started from an empty log).
	ReplayRecords int64
	ReplayNs      int64
}

// registeredMessages lists one zero value of every message type that
// crosses the wire; init registers them with the gob codec, and the
// round-trip test sweeps the same list so no type ships unregistered or
// untested.
func registeredMessages() []any {
	return []any{
		GetRequest{}, GetResponse{}, MultiGetRequest{}, MultiGetResponse{},
		Replicated{},
		PutRequest{}, PutResponse{},
		DeleteRequest{}, DeleteResponse{}, ReplicateData{}, Ack{}, BatchAck{},
		WatermarkBroadcast{}, PrepareRequest{}, PrepareResponse{},
		DecisionRequest{}, DecisionResponse{}, StatusRequest{}, StatusResponse{},
		ReplicatePrepare{}, ReplicateDecision{}, LeaseRequest{}, LeaseResponse{},
		RecoveryPullRequest{}, RecoveryPullResponse{}, PromoteRequest{}, PromoteResponse{},
		StatsRequest{}, StatsResponse{},
		TraceRequest{}, TraceResponse{}, TimeHealthRequest{}, TimeHealthResponse{},
		AuditRequest{}, AuditResponse{},
		TSDBRequest{}, TSDBResponse{},
		WALCheckpoint{}, WALStatusRequest{}, WALStatusResponse{},
	}
}

func init() {
	for _, v := range registeredMessages() {
		transport.RegisterType(v)
	}
}
