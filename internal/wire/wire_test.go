package wire

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/clock"
	"repro/internal/obs"
)

func TestStringers(t *testing.T) {
	if got := (TxnID{Client: 7, Seq: 42}).String(); got != "7.42" {
		t.Fatalf("TxnID = %q", got)
	}
	statuses := map[TxnStatus]string{
		StatusUnknown:   "UNKNOWN",
		StatusPrepared:  "PREPARED",
		StatusCommitted: "COMMITTED",
		StatusAborted:   "ABORTED",
	}
	for s, want := range statuses {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
	reasons := []AbortReason{AbortNone, AbortReadPrepared, AbortReadStale, AbortWritePrepared, AbortLateWriteRead, AbortLateWrite, AbortOther}
	seen := map[string]bool{}
	for _, r := range reasons {
		s := r.String()
		if s == "" || seen[s] {
			t.Fatalf("reason %d has empty/duplicate name %q", r, s)
		}
		seen[s] = true
	}
	if NumAbortReasons != len(reasons) {
		t.Fatalf("NumAbortReasons = %d, want %d", NumAbortReasons, len(reasons))
	}
}

// TestGobRoundTrip pushes every registered message through the gob codec the
// TCP transport uses, as an interface value — the shape the wire sees.
func TestGobRoundTrip(t *testing.T) {
	ts := clock.Timestamp{Ticks: 99, Client: 3}
	msgs := []any{
		GetRequest{Key: []byte("k"), At: ts, AnyReplica: true},
		GetResponse{Val: []byte("v"), Version: ts, Found: true, PreparedAtOrBefore: true},
		MultiGetRequest{Keys: [][]byte{[]byte("a"), []byte("b")}, At: ts},
		MultiGetResponse{Items: []GetResponse{{Found: true}}},
		PutRequest{Key: []byte("k"), Val: []byte("v"), Version: ts},
		PutResponse{Rejected: true},
		DeleteRequest{Key: []byte("k"), Version: ts},
		DeleteResponse{},
		ReplicateData{Ops: []DataOp{
			{Key: []byte("k"), Val: []byte("v"), Version: ts, Tombstone: true,
				TC: obs.TraceContext{TraceID: 8, SpanID: 9, Sampled: true}},
		}},
		Replicated{Epoch: 7, Msg: ReplicateData{Ops: []DataOp{{Key: []byte("k"), Version: ts}}}},
		Ack{},
		BatchAck{Errs: []string{"", "rejected: stale version", ""}},
		WatermarkBroadcast{Client: 1, Ts: ts},
		PrepareRequest{ID: TxnID{Client: 1, Seq: 2}, CommitTs: ts, ReadSet: []ReadKey{{Key: []byte("r"), Version: ts}}, WriteSet: []KV{{Key: []byte("w"), Val: []byte("x")}}, Participants: []int{0, 1}},
		PrepareResponse{OK: false, Reason: "x", Code: AbortLateWrite},
		DecisionRequest{ID: TxnID{Client: 1, Seq: 2}, Commit: true},
		DecisionResponse{},
		StatusRequest{ID: TxnID{Client: 1, Seq: 2}},
		StatusResponse{Status: StatusCommitted},
		ReplicatePrepare{Record: TxnRecord{ID: TxnID{Client: 1, Seq: 2}, CommitTs: ts, Status: StatusPrepared}},
		ReplicateDecision{ID: TxnID{Client: 1, Seq: 2}, Commit: true},
		LeaseRequest{Primary: "p", Expiry: ts},
		LeaseResponse{Granted: true},
		RecoveryPullRequest{Since: ts},
		RecoveryPullResponse{Txns: []TxnRecord{{ID: TxnID{Client: 9}}}, LeaseExpiry: ts},
		PromoteRequest{},
		PromoteResponse{},
		TraceRequest{TraceID: 11},
		TraceResponse{Addr: "shard0/r1",
			Spans: []obs.SpanRecord{{TraceID: 11, SpanID: 2, Parent: 1, Node: "shard0/r1", Name: "serve", Start: 5, End: 9, Outcome: "ok"}},
			Clock: clock.Health{OffsetNs: 120, ResidualNs: 50, DriftNs: 10, SinceSyncNs: 100, UncertaintyNs: 60}},
		TimeHealthRequest{},
		TimeHealthResponse{Addr: "shard0/r0", Shard: 0, Primary: true,
			Clock: clock.Health{OffsetNs: -40, ResidualNs: -20, UncertaintyNs: 20},
			Now:   ts, Watermark: clock.Timestamp{Ticks: 90, Client: 3}, WatermarkLagNs: 9},
		AuditRequest{},
		AuditResponse{Addr: "shard0/r0", Enabled: true, Profile: "ntp",
			Pending: 3, UnknownRetained: 1, WindowsChecked: 4, WindowsSkipped: 2,
			Convictions: 1, EpsilonViolations: 2, LastCut: ts,
			Artifacts: [][]byte{[]byte(`{"kind":"conviction"}`)}},
		TSDBRequest{Patterns: []string{"semel_"}, LastN: 10},
		TSDBResponse{Addr: "shard0/r0", IntervalNs: 1e9,
			Series: []obs.SeriesDump{{Name: "semel_watermark_lag_ns", Seq: 3, First: 7, Deltas: []int64{1, -2}}}},
		StatsRequest{Detailed: true},
		StatsResponse{Addr: "a", Primary: true, Gets: 5, Watermark: ts,
			Obs: obs.Snapshot{
				Counters: map[string]int64{`milana_aborts_total{reason="READ_STALE"}`: 2},
				Gauges:   map[string]int64{"semel_watermark_ticks": 99},
				Hists: map[string]obs.HistogramSnapshot{
					`semel_serve_ns{op="get"}`: {Count: 1, Sum: 40, Buckets: []obs.Bucket{{Idx: 4, N: 1}}},
				},
			}},
		WALCheckpoint{Epoch: 4, Watermark: ts, LeasePrimary: "shard0/r0", LeaseExpiry: ts,
			Txns: []TxnRecord{{ID: TxnID{Client: 2, Seq: 5}, CommitTs: ts, WriteSet: []KV{{Key: []byte("k"), Val: []byte("v")}}, Status: StatusCommitted}},
			Data: []DataOp{{Key: []byte("d"), Val: []byte("1"), Version: ts}}},
		WALStatusRequest{},
		WALStatusResponse{Addr: "shard0/r1", Enabled: true, AppendedLSN: 20, DurableLSN: 19,
			CheckpointLSN: 12, Segments: 3, Bytes: 999, Fsyncs: 5, ReplayRecords: 8, ReplayNs: 1234},
	}
	covered := map[reflect.Type]bool{}
	for _, msg := range msgs {
		covered[reflect.TypeOf(msg)] = true
		var buf bytes.Buffer
		// Encode as interface, the way the TCP frame carries payloads.
		env := struct{ Payload any }{Payload: msg}
		if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
			t.Fatalf("%T: encode: %v", msg, err)
		}
		var out struct{ Payload any }
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("%T: decode: %v", msg, err)
		}
		if out.Payload == nil {
			t.Fatalf("%T: payload lost", msg)
		}
		if reflect.TypeOf(out.Payload) != reflect.TypeOf(msg) {
			t.Fatalf("%T decoded as %T", msg, out.Payload)
		}
		// Field-exact round trip: a silently dropped or renamed field is
		// a protocol bug even if nothing crashes.
		if !reflect.DeepEqual(out.Payload, msg) {
			t.Fatalf("%T round trip altered the message:\n in: %+v\nout: %+v", msg, msg, out.Payload)
		}
	}

	// Every type the transport registers must appear above — adding a
	// message to wire.go without extending this test is an error.
	for _, v := range registeredMessages() {
		if !covered[reflect.TypeOf(v)] {
			t.Errorf("registered message %T has no round-trip case", v)
		}
	}
}
