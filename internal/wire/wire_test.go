package wire

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/clock"
	"repro/internal/obs"
)

func TestStringers(t *testing.T) {
	if got := (TxnID{Client: 7, Seq: 42}).String(); got != "7.42" {
		t.Fatalf("TxnID = %q", got)
	}
	statuses := map[TxnStatus]string{
		StatusUnknown:   "UNKNOWN",
		StatusPrepared:  "PREPARED",
		StatusCommitted: "COMMITTED",
		StatusAborted:   "ABORTED",
	}
	for s, want := range statuses {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
	reasons := []AbortReason{AbortNone, AbortReadPrepared, AbortReadStale, AbortWritePrepared, AbortLateWriteRead, AbortLateWrite, AbortOther}
	seen := map[string]bool{}
	for _, r := range reasons {
		s := r.String()
		if s == "" || seen[s] {
			t.Fatalf("reason %d has empty/duplicate name %q", r, s)
		}
		seen[s] = true
	}
	if NumAbortReasons != len(reasons) {
		t.Fatalf("NumAbortReasons = %d, want %d", NumAbortReasons, len(reasons))
	}
}

// TestGobRoundTrip pushes every registered message through the gob codec the
// TCP transport uses, as an interface value — the shape the wire sees.
func TestGobRoundTrip(t *testing.T) {
	ts := clock.Timestamp{Ticks: 99, Client: 3}
	msgs := []any{
		GetRequest{Key: []byte("k"), At: ts, AnyReplica: true},
		GetResponse{Val: []byte("v"), Version: ts, Found: true, PreparedAtOrBefore: true},
		MultiGetRequest{Keys: [][]byte{[]byte("a"), []byte("b")}, At: ts},
		MultiGetResponse{Items: []GetResponse{{Found: true}}},
		PutRequest{Key: []byte("k"), Val: []byte("v"), Version: ts},
		PutResponse{Rejected: true},
		DeleteRequest{Key: []byte("k"), Version: ts},
		DeleteResponse{},
		ReplicateData{Ops: []DataOp{{Key: []byte("k"), Version: ts, Tombstone: true}}},
		Ack{},
		WatermarkBroadcast{Client: 1, Ts: ts},
		PrepareRequest{ID: TxnID{Client: 1, Seq: 2}, CommitTs: ts, ReadSet: []ReadKey{{Key: []byte("r"), Version: ts}}, WriteSet: []KV{{Key: []byte("w"), Val: []byte("x")}}, Participants: []int{0, 1}},
		PrepareResponse{OK: false, Reason: "x", Code: AbortLateWrite},
		DecisionRequest{ID: TxnID{Client: 1, Seq: 2}, Commit: true},
		DecisionResponse{},
		StatusRequest{ID: TxnID{Client: 1, Seq: 2}},
		StatusResponse{Status: StatusCommitted},
		ReplicatePrepare{Record: TxnRecord{ID: TxnID{Client: 1, Seq: 2}, CommitTs: ts, Status: StatusPrepared}},
		ReplicateDecision{ID: TxnID{Client: 1, Seq: 2}, Commit: true},
		LeaseRequest{Primary: "p", Expiry: ts},
		LeaseResponse{Granted: true},
		RecoveryPullRequest{Since: ts},
		RecoveryPullResponse{Txns: []TxnRecord{{ID: TxnID{Client: 9}}}, LeaseExpiry: ts},
		PromoteRequest{},
		PromoteResponse{},
		StatsRequest{Detailed: true},
		StatsResponse{Addr: "a", Primary: true, Gets: 5, Watermark: ts,
			Obs: obs.Snapshot{
				Counters: map[string]int64{`milana_aborts_total{reason="READ_STALE"}`: 2},
				Gauges:   map[string]int64{"semel_watermark_ticks": 99},
				Hists: map[string]obs.HistogramSnapshot{
					`semel_serve_ns{op="get"}`: {Count: 1, Sum: 40, Buckets: []obs.Bucket{{Idx: 4, N: 1}}},
				},
			}},
	}
	for _, msg := range msgs {
		var buf bytes.Buffer
		// Encode as interface, the way the TCP frame carries payloads.
		env := struct{ Payload any }{Payload: msg}
		if err := gob.NewEncoder(&buf).Encode(&env); err != nil {
			t.Fatalf("%T: encode: %v", msg, err)
		}
		var out struct{ Payload any }
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("%T: decode: %v", msg, err)
		}
		if out.Payload == nil {
			t.Fatalf("%T: payload lost", msg)
		}
		if _, ok := out.Payload.(Ack); msg == (Ack{}) && !ok {
			t.Fatalf("Ack decoded as %T", out.Payload)
		}
		if sr, ok := out.Payload.(StatsResponse); ok {
			h, found := sr.Obs.Hists[`semel_serve_ns{op="get"}`]
			if !found || h.Count != 1 || len(h.Buckets) != 1 || h.Buckets[0].N != 1 {
				t.Fatalf("StatsResponse.Obs lost in transit: %+v", sr.Obs)
			}
			if sr.Obs.Counters[`milana_aborts_total{reason="READ_STALE"}`] != 2 {
				t.Fatalf("StatsResponse.Obs counters lost: %+v", sr.Obs.Counters)
			}
		}
	}
}
