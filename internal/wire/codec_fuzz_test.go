package wire

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"repro/internal/clock"
	"repro/internal/obs"
)

// FuzzCodecRoundTrip drives the codec from two directions:
//
//  1. Structured: build hot-path messages from fuzzed primitives and demand
//     decode(encode(m)) == m, and that the gob fallback path decodes the
//     same message to the same value (the two frame tags are equivalent).
//  2. Adversarial: feed the raw fuzz input straight to Decode. It must
//     never panic or over-allocate; when it does decode, the result must
//     re-encode canonically (decode∘encode is idempotent).
func FuzzCodecRoundTrip(f *testing.F) {
	for _, m := range codecExemplars() {
		if buf, err := Codec.Append(nil, m); err == nil {
			f.Add(buf, int64(1), uint32(2), true, []byte("k"), []byte("v"))
		}
	}
	f.Fuzz(func(t *testing.T, raw []byte, ticks int64, client uint32, flag bool, key, val []byte) {
		// Codec v1 preserves the nil/empty slice distinction; gob collapses
		// empty to nil. The equivalence claim is over nil-or-populated
		// inputs (nothing in the system sends empty-but-non-nil slices), so
		// normalize the fuzzed bytes the same way.
		if len(key) == 0 {
			key = nil
		}
		if len(val) == 0 {
			val = nil
		}
		ts := clock.Timestamp{Ticks: ticks, Client: client}
		structured := []any{
			GetRequest{Key: key, At: ts, AnyReplica: flag},
			GetResponse{Val: val, Version: ts, Found: flag, SnapshotMiss: !flag},
			PutRequest{Key: key, Val: val, Version: ts},
			MultiGetRequest{Keys: [][]byte{key, val}, At: ts, AnyReplica: flag},
			ReplicateData{Ops: []DataOp{
				{Key: key, Val: val, Version: ts, Tombstone: flag, TC: obs.TraceContext{TraceID: uint64(client), SpanID: uint64(ticks), Sampled: flag}},
				{Key: val, Version: ts},
			}},
			PrepareRequest{
				ID: TxnID{Client: client, Seq: uint64(ticks)}, CommitTs: ts,
				ReadSet:  []ReadKey{{Key: key, Version: ts}},
				WriteSet: []KV{{Key: key, Val: val}}, Participants: []int{int(client % 7)},
			},
			BatchAck{Errs: []string{string(key)}},
			Replicated{Epoch: uint64(client), Msg: PutRequest{Key: key, Val: val, Version: ts}},
		}
		for _, m := range structured {
			buf, err := Codec.Append(nil, m)
			if err != nil {
				t.Fatalf("%T: encode: %v", m, err)
			}
			out, err := Codec.Decode(buf)
			if err != nil {
				t.Fatalf("%T: decode: %v", m, err)
			}
			if !reflect.DeepEqual(out, m) {
				t.Fatalf("%T: v1 round trip mismatch\n got %#v\nwant %#v", m, out, m)
			}
			var gobBuf bytes.Buffer
			holder := m
			if err := gob.NewEncoder(&gobBuf).Encode(&holder); err != nil {
				t.Fatalf("%T: gob encode: %v", m, err)
			}
			var gobOut any
			if err := gob.NewDecoder(&gobBuf).Decode(&gobOut); err != nil {
				t.Fatalf("%T: gob decode: %v", m, err)
			}
			if !reflect.DeepEqual(out, gobOut) {
				t.Fatalf("%T: v1 and gob paths disagree\n v1 %#v\ngob %#v", m, out, gobOut)
			}
		}

		// Adversarial direction: arbitrary bytes.
		v, err := Codec.Decode(raw)
		if err != nil {
			return
		}
		re, err := Codec.Append(nil, v)
		if err != nil {
			t.Fatalf("decoded %T but cannot re-encode: %v", v, err)
		}
		v2, err := Codec.Decode(re)
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v", v, err)
		}
		if !reflect.DeepEqual(v, v2) {
			t.Fatalf("decode∘encode not idempotent\n 1st %#v\n 2nd %#v", v, v2)
		}
	})
}
