// Command experiments regenerates every table and figure of the paper's
// evaluation section (§5) and prints them in the shapes the paper reports.
//
// Usage:
//
//	experiments [-run all|table1|fig1|fig6|fig7|fig8|fig9] [-quick] [-duration 1s] [-users N] [-seed N]
//
// Full runs take a few minutes (they burn real time in the flash emulator
// and network model); -quick shrinks every experiment to a smoke test.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		run      = flag.String("run", "all", "which experiment: all, table1, fig1, fig6, fig7, fig8, fig9, ablation")
		quick    = flag.Bool("quick", false, "shrink populations and durations (smoke test)")
		duration = flag.Duration("duration", 0, "override per-point measurement duration")
		users    = flag.Int("users", 0, "override Retwis user population")
		seed     = flag.Int64("seed", 1, "random seed")
		verbose  = flag.Bool("v", false, "print per-point progress to stderr")
		csvDir   = flag.String("csv", "", "also write each experiment's rows as CSV into this directory")
	)
	flag.Parse()

	cfg := exp.Config{Quick: *quick, Duration: *duration, Users: *users, Seed: *seed, Verbose: *verbose}
	ctx := context.Background()

	writeCSV := func(name string, header []string, rows [][]string) error {
		if *csvDir == "" {
			return nil
		}
		return exp.WriteCSV(*csvDir, name, header, rows)
	}
	runners := []struct {
		name string
		fn   func() (string, error)
	}{
		{"table1", func() (string, error) {
			rows, err := exp.RunTable1(ctx, cfg)
			if err == nil {
				h, rs := exp.Table1CSV(rows)
				err = writeCSV("table1", h, rs)
			}
			return exp.RenderTable1(rows), err
		}},
		{"fig1", func() (string, error) {
			rows, err := exp.RunFigure1(ctx, cfg)
			if err == nil {
				h, rs := exp.Figure1CSV(rows)
				err = writeCSV("fig1", h, rs)
			}
			return exp.RenderFigure1(rows), err
		}},
		{"fig6", func() (string, error) {
			rows, err := exp.RunFigure6(ctx, cfg)
			if err == nil {
				h, rs := exp.Figure6CSV(rows)
				err = writeCSV("fig6", h, rs)
			}
			return exp.RenderFigure6(rows), err
		}},
		{"fig7", func() (string, error) {
			rows, err := exp.RunFigure7(ctx, cfg)
			if err == nil {
				h, rs := exp.Figure7CSV(rows)
				err = writeCSV("fig7", h, rs)
			}
			return exp.RenderFigure7(rows), err
		}},
		{"fig8", func() (string, error) {
			rows, err := exp.RunFigure8(ctx, cfg)
			if err == nil {
				h, rs := exp.Figure8CSV(rows)
				err = writeCSV("fig8", h, rs)
			}
			return exp.RenderFigure8(rows), err
		}},
		{"fig9", func() (string, error) {
			rows, err := exp.RunFigure9(ctx, cfg)
			if err == nil {
				h, rs := exp.Figure9CSV(rows)
				err = writeCSV("fig9", h, rs)
			}
			return exp.RenderFigure9(rows), err
		}},
		{"ablation", func() (string, error) {
			rows, err := exp.RunSkewAblation(ctx, cfg)
			if err == nil {
				h, rs := exp.AblationCSV(rows)
				err = writeCSV("ablation", h, rs)
			}
			return exp.RenderSkewAblation(rows), err
		}},
	}

	selected := strings.ToLower(*run)
	found := false
	for _, r := range runners {
		if selected != "all" && selected != r.name {
			continue
		}
		found = true
		start := time.Now()
		out, err := r.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("(%s completed in %v)\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		os.Exit(2)
	}
}
