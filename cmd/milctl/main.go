// Command milctl is a command-line client for semeld servers.
//
//	milctl -shards ":7001,:7002,:7003" get mykey
//	milctl -shards ":7001,:7002,:7003" put mykey myvalue
//	milctl -shards ":7001,:7002,:7003" del mykey
//	milctl -shards ":7001,:7002,:7003" txn get a put b 2 get c
//
// The txn subcommand executes its operation list inside one MILANA
// transaction: "get <key>" reads, "put <key> <value>" writes; the
// transaction commits at the end (read-only transactions validate locally).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/milana"
	"repro/internal/obs"
	"repro/internal/semel"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	var (
		shards   = flag.String("shards", ":7001", "';'-separated shards, each a ','-separated replica list (primary first)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-command timeout")
		id       = flag.Uint("id", 1, "client id (must be unique per concurrent client)")
		traceTxn = flag.Bool("trace", false, "with txn: propagate a trace context and print the stitched cross-node timeline")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: milctl [flags] get|put|del|txn|stats|trace|timehealth ...")
		os.Exit(2)
	}

	var sets []cluster.ReplicaSet
	for _, s := range strings.Split(*shards, ";") {
		addrs := strings.Split(s, ",")
		sets = append(sets, cluster.ReplicaSet{Primary: addrs[0], Backups: addrs[1:]})
	}
	dir, err := cluster.New(sets)
	if err != nil {
		log.Fatal(err)
	}
	net := transport.NewTCPClient()
	defer net.Close()
	clk := clock.NewPerfect(clock.NewSystemSource(), uint32(*id))
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch args[0] {
	case "get":
		requireArgs(args, 2)
		cl := semel.NewClient(clk, net, dir)
		val, ver, found, err := cl.Get(ctx, []byte(args[1]))
		exitOn(err)
		if !found {
			fmt.Println("(not found)")
			return
		}
		fmt.Printf("%s\t(version %v)\n", val, ver)
	case "put":
		requireArgs(args, 3)
		cl := semel.NewClient(clk, net, dir)
		ver, err := cl.Put(ctx, []byte(args[1]), []byte(args[2]))
		exitOn(err)
		fmt.Printf("ok (version %v)\n", ver)
	case "del":
		requireArgs(args, 2)
		cl := semel.NewClient(clk, net, dir)
		exitOn(cl.Delete(ctx, []byte(args[1])))
		fmt.Println("ok")
	case "txn":
		cl := milana.NewClient(clk, net, dir)
		// The process exits as soon as the transaction decides; the
		// default fire-and-forget decision notification would be killed
		// mid-flight, leaving the transaction PREPARED server-side until
		// the cooperative-termination sweep resolves it (and blocking
		// conflicting writers in the meantime).
		cl.SyncDecisions = true
		if *traceTxn {
			cl.EnableTracing(0)
		}
		err := cl.RunTransaction(ctx, func(t *milana.Txn) error {
			ops := args[1:]
			for len(ops) > 0 {
				switch ops[0] {
				case "get":
					if len(ops) < 2 {
						return fmt.Errorf("txn get needs a key")
					}
					val, found, err := t.Get(ctx, []byte(ops[1]))
					if err != nil {
						return err
					}
					if found {
						fmt.Printf("%s = %s\n", ops[1], val)
					} else {
						fmt.Printf("%s = (not found)\n", ops[1])
					}
					ops = ops[2:]
				case "put":
					if len(ops) < 3 {
						return fmt.Errorf("txn put needs key and value")
					}
					if err := t.Put([]byte(ops[1]), []byte(ops[2])); err != nil {
						return err
					}
					ops = ops[3:]
				default:
					return fmt.Errorf("unknown txn op %q", ops[0])
				}
			}
			return nil
		})
		exitOn(err)
		fmt.Println("committed")
		if *traceTxn {
			spans := cl.Spans().Recent()
			if len(spans) == 0 {
				fmt.Println("(no trace recorded)")
				return
			}
			tid := spans[len(spans)-1].TraceID
			fmt.Printf("trace id %016x (also: milctl trace %016x)\n", tid, tid)
			printStitchedTrace(ctx, net, dir, tid, cl.Spans(), cl.Clock())
		}
	case "trace":
		requireArgs(args, 2)
		tid, err := parseTraceID(args[1])
		exitOn(err)
		printStitchedTrace(ctx, net, dir, tid, nil, nil)
	case "timehealth":
		fmt.Printf("%-20s %-7s %12s %12s %12s %12s %14s\n",
			"replica", "role", "offset", "residual", "drift", "uncertainty", "watermark lag")
		for i := 0; i < dir.NumShards(); i++ {
			rs, err := dir.Shard(cluster.ShardID(i))
			exitOn(err)
			for _, addr := range rs.Replicas() {
				resp, err := net.Call(ctx, addr, wire.TimeHealthRequest{})
				if err != nil {
					fmt.Printf("%-20s unreachable: %v\n", addr, err)
					continue
				}
				th, ok := resp.(wire.TimeHealthResponse)
				if !ok {
					fmt.Printf("%-20s error: unexpected reply %T\n", addr, resp)
					continue
				}
				role := "backup"
				if th.Primary {
					role = "primary"
				}
				fmt.Printf("%-20s %-7s %12v %12v %12v %12v %14v\n",
					th.Addr, role,
					time.Duration(th.Clock.OffsetNs), time.Duration(th.Clock.ResidualNs),
					time.Duration(th.Clock.DriftNs), time.Duration(th.Clock.UncertaintyNs),
					time.Duration(th.WatermarkLagNs))
			}
		}
	case "stats":
		var merged obs.Snapshot
		for i := 0; i < dir.NumShards(); i++ {
			rs, err := dir.Shard(cluster.ShardID(i))
			exitOn(err)
			for _, addr := range rs.Replicas() {
				resp, err := net.Call(ctx, addr, wire.StatsRequest{Detailed: true})
				if err != nil {
					fmt.Printf("%-20s unreachable: %v\n", addr, err)
					continue
				}
				st, ok := resp.(wire.StatsResponse)
				if !ok {
					// A replica that answered with something else (an old
					// binary, a misrouted error value) is reported, not
					// silently skipped.
					fmt.Printf("%-20s error: unexpected reply %T\n", addr, resp)
					continue
				}
				role := "backup"
				if st.Primary {
					role = "primary"
				}
				fmt.Printf("%-20s shard %d %-7s gets=%d puts=%d dels=%d prepares=%d commits=%d aborts=%d repl=%d wm=%v\n",
					addr, st.Shard, role, st.Gets, st.Puts, st.Deletes, st.Prepares, st.Commits, st.Aborts, st.ReplOps, st.Watermark)
				merged.Merge(st.Obs)
			}
		}
		printLatencyTable("transaction stages (cluster-wide)", merged, "milana_txn_stage_ns")
		printLatencyTable("server op latency (cluster-wide)", merged, "semel_serve_ns")
		printCounterTable("abort reasons", merged, "milana_aborts_total")
		printCounterTable("sweep outcomes", merged, "milana_sweep_total")
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", args[0])
		os.Exit(2)
	}
}

// parseTraceID accepts either a transaction ID in "client.seq" form (the IDs
// printed in server logs and abort errors) or a raw hex trace ID.
func parseTraceID(s string) (uint64, error) {
	if c, seq, ok := strings.Cut(s, "."); ok {
		var id wire.TxnID
		if _, err := fmt.Sscanf(c, "%d", &id.Client); err != nil {
			return 0, fmt.Errorf("bad txn id %q: %v", s, err)
		}
		if _, err := fmt.Sscanf(seq, "%d", &id.Seq); err != nil {
			return 0, fmt.Errorf("bad txn id %q: %v", s, err)
		}
		return id.TraceID(), nil
	}
	var tid uint64
	if _, err := fmt.Sscanf(s, "%x", &tid); err != nil {
		return 0, fmt.Errorf("bad trace id %q (want hex id or client.seq): %v", s, err)
	}
	return tid, nil
}

// printStitchedTrace pulls the trace's spans and clock-health estimates from
// every replica of every shard (plus the local client store, when given),
// aligns them by each node's estimated clock offset, and renders one
// timeline with residual-uncertainty annotations.
func printStitchedTrace(ctx context.Context, net transport.Client, dir *cluster.Directory, tid uint64, local *obs.SpanStore, localClk clock.Clock) {
	col := obs.NewCollector()
	if local != nil {
		col.AddSpans(local.ForTrace(tid))
		if hr, ok := localClk.(clock.HealthReporter); ok {
			h := hr.Health()
			col.SetNodeClock(obs.NodeClock{Node: local.Node(), OffsetNs: h.OffsetNs, UncertaintyNs: h.UncertaintyNs})
		}
	}
	for i := 0; i < dir.NumShards(); i++ {
		rs, err := dir.Shard(cluster.ShardID(i))
		exitOn(err)
		for _, addr := range rs.Replicas() {
			resp, err := net.Call(ctx, addr, wire.TraceRequest{TraceID: tid})
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s unreachable: %v\n", addr, err)
				continue
			}
			tr, ok := resp.(wire.TraceResponse)
			if !ok {
				fmt.Fprintf(os.Stderr, "%s: unexpected reply %T\n", addr, resp)
				continue
			}
			col.AddSpans(tr.Spans)
			col.SetNodeClock(obs.NodeClock{Node: tr.Addr, OffsetNs: tr.Clock.OffsetNs, UncertaintyNs: tr.Clock.UncertaintyNs})
		}
	}
	fmt.Print(col.Assemble(tid).Render())
}

// labelValue extracts the first label value from a metric name:
// `x{stage="prepare"}` → "prepare". Unlabeled names return themselves.
func labelValue(name string) string {
	i := strings.IndexByte(name, '"')
	if i < 0 {
		return name
	}
	j := strings.IndexByte(name[i+1:], '"')
	if j < 0 {
		return name
	}
	return name[i+1 : i+1+j]
}

// printLatencyTable renders percentiles of every histogram under prefix.
func printLatencyTable(title string, snap obs.Snapshot, prefix string) {
	var names []string
	for name, h := range snap.Hists {
		if strings.HasPrefix(name, prefix) && h.Count > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Printf("\n%s\n", title)
	fmt.Printf("  %-16s %10s %12s %12s %12s\n", "", "count", "p50", "p95", "p99")
	for _, name := range names {
		h := snap.Hists[name]
		p50, p95, p99, _ := h.Percentiles()
		fmt.Printf("  %-16s %10d %12v %12v %12v\n",
			labelValue(name), h.Count, time.Duration(p50), time.Duration(p95), time.Duration(p99))
	}
}

// printCounterTable renders every non-zero counter under prefix.
func printCounterTable(title string, snap obs.Snapshot, prefix string) {
	var names []string
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, prefix) && v > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Printf("\n%s\n", title)
	for _, name := range names {
		fmt.Printf("  %-24s %d\n", labelValue(name), snap.Counters[name])
	}
}

func requireArgs(args []string, n int) {
	if len(args) < n {
		fmt.Fprintf(os.Stderr, "%s: missing arguments\n", args[0])
		os.Exit(2)
	}
}

func exitOn(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
