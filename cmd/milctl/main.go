// Command milctl is a command-line client for semeld servers.
//
//	milctl -shards ":7001,:7002,:7003" get mykey
//	milctl -shards ":7001,:7002,:7003" put mykey myvalue
//	milctl -shards ":7001,:7002,:7003" del mykey
//	milctl -shards ":7001,:7002,:7003" txn get a put b 2 get c
//
// The txn subcommand executes its operation list inside one MILANA
// transaction: "get <key>" reads, "put <key> <value>" writes; the
// transaction commits at the end (read-only transactions validate locally).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/milana"
	"repro/internal/obs"
	"repro/internal/semel"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	var (
		shards   = flag.String("shards", ":7001", "';'-separated shards, each a ','-separated replica list (primary first)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-command timeout")
		id       = flag.Uint("id", 1, "client id (must be unique per concurrent client)")
		traceTxn = flag.Bool("trace", false, "with txn: propagate a trace context and print the stitched cross-node timeline")
		interval = flag.Duration("interval", time.Second, "with top: refresh period")
		rounds   = flag.Int("rounds", 0, "with top: number of refreshes (0 = until interrupted)")
		samples  = flag.Int("samples", 60, "with history: samples pulled per series (0 = the full retained window)")
		gobWire  = flag.Bool("gob", false, "force the gob wire codec (talks to pre-codec servers; normally the binary codec is negotiated per frame)")
		callTO   = flag.Duration("call-timeout", transport.DefaultCallTimeout, "default per-RPC deadline when a command's context has none; negative disables")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: milctl [flags] get|put|del|txn|stats|trace|timehealth|walstatus|audit|top|history ...")
		os.Exit(2)
	}

	var sets []cluster.ReplicaSet
	for _, s := range strings.Split(*shards, ";") {
		addrs := strings.Split(s, ",")
		sets = append(sets, cluster.ReplicaSet{Primary: addrs[0], Backups: addrs[1:]})
	}
	dir, err := cluster.New(sets)
	if err != nil {
		log.Fatal(err)
	}
	net := transport.NewTCPClientOpts(transport.TCPClientOptions{ForceGob: *gobWire, CallTimeout: *callTO})
	defer net.Close()
	clk := clock.NewPerfect(clock.NewSystemSource(), uint32(*id))
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch args[0] {
	case "get":
		requireArgs(args, 2)
		cl := semel.NewClient(clk, net, dir)
		val, ver, found, err := cl.Get(ctx, []byte(args[1]))
		exitOn(err)
		if !found {
			fmt.Println("(not found)")
			return
		}
		fmt.Printf("%s\t(version %v)\n", val, ver)
	case "put":
		requireArgs(args, 3)
		cl := semel.NewClient(clk, net, dir)
		ver, err := cl.Put(ctx, []byte(args[1]), []byte(args[2]))
		exitOn(err)
		fmt.Printf("ok (version %v)\n", ver)
	case "del":
		requireArgs(args, 2)
		cl := semel.NewClient(clk, net, dir)
		exitOn(cl.Delete(ctx, []byte(args[1])))
		fmt.Println("ok")
	case "txn":
		cl := milana.NewClient(clk, net, dir)
		// The process exits as soon as the transaction decides; the
		// default fire-and-forget decision notification would be killed
		// mid-flight, leaving the transaction PREPARED server-side until
		// the cooperative-termination sweep resolves it (and blocking
		// conflicting writers in the meantime).
		cl.SyncDecisions = true
		// Stage attribution rides every request (WantStages), so the servers
		// fold this transaction into their server_stage_ledger series and the
		// client can print where the wall time went.
		stageReg := obs.NewRegistry()
		cl.EnableStages(stageReg)
		if *traceTxn {
			cl.EnableTracing(0)
		}
		err := cl.RunTransaction(ctx, func(t *milana.Txn) error {
			ops := args[1:]
			for len(ops) > 0 {
				switch ops[0] {
				case "get":
					if len(ops) < 2 {
						return fmt.Errorf("txn get needs a key")
					}
					val, found, err := t.Get(ctx, []byte(ops[1]))
					if err != nil {
						return err
					}
					if found {
						fmt.Printf("%s = %s\n", ops[1], val)
					} else {
						fmt.Printf("%s = (not found)\n", ops[1])
					}
					ops = ops[2:]
				case "put":
					if len(ops) < 3 {
						return fmt.Errorf("txn put needs key and value")
					}
					if err := t.Put([]byte(ops[1]), []byte(ops[2])); err != nil {
						return err
					}
					ops = ops[3:]
				default:
					return fmt.Errorf("unknown txn op %q", ops[0])
				}
			}
			return nil
		})
		exitOn(err)
		fmt.Println("committed")
		printTxnStages(stageReg.Snapshot())
		if *traceTxn {
			spans := cl.Spans().Recent()
			if len(spans) == 0 {
				fmt.Println("(no trace recorded)")
				return
			}
			tid := spans[len(spans)-1].TraceID
			fmt.Printf("trace id %016x (also: milctl trace %016x)\n", tid, tid)
			printStitchedTrace(ctx, net, dir, tid, cl.Spans(), cl.Clock())
		}
	case "trace":
		requireArgs(args, 2)
		tid, err := parseTraceID(args[1])
		exitOn(err)
		printStitchedTrace(ctx, net, dir, tid, nil, nil)
	case "timehealth":
		fmt.Printf("%-20s %-7s %12s %12s %12s %12s %14s\n",
			"replica", "role", "offset", "residual", "drift", "uncertainty", "watermark lag")
		for i := 0; i < dir.NumShards(); i++ {
			rs, err := dir.Shard(cluster.ShardID(i))
			exitOn(err)
			for _, addr := range rs.Replicas() {
				resp, err := net.Call(ctx, addr, wire.TimeHealthRequest{})
				if err != nil {
					fmt.Printf("%-20s unreachable: %v\n", addr, err)
					continue
				}
				th, ok := resp.(wire.TimeHealthResponse)
				if !ok {
					fmt.Printf("%-20s error: unexpected reply %T\n", addr, resp)
					continue
				}
				role := "backup"
				if th.Primary {
					role = "primary"
				}
				fmt.Printf("%-20s %-7s %12v %12v %12v %12v %14v\n",
					th.Addr, role,
					time.Duration(th.Clock.OffsetNs), time.Duration(th.Clock.ResidualNs),
					time.Duration(th.Clock.DriftNs), time.Duration(th.Clock.UncertaintyNs),
					time.Duration(th.WatermarkLagNs))
			}
		}
	case "walstatus":
		fmt.Printf("%-20s %-8s %12s %12s %12s %9s %10s %14s %12s\n",
			"replica", "wal", "appended", "durable", "checkpoint", "segments", "fsyncs", "replay recs", "replay time")
		for i := 0; i < dir.NumShards(); i++ {
			rs, err := dir.Shard(cluster.ShardID(i))
			exitOn(err)
			for _, addr := range rs.Replicas() {
				resp, err := net.Call(ctx, addr, wire.WALStatusRequest{})
				if err != nil {
					fmt.Printf("%-20s unreachable: %v\n", addr, err)
					continue
				}
				ws, ok := resp.(wire.WALStatusResponse)
				if !ok {
					fmt.Printf("%-20s error: unexpected reply %T\n", addr, resp)
					continue
				}
				if !ws.Enabled {
					fmt.Printf("%-20s %-8s (DRAM-only: an amnesia kill loses acked state)\n", ws.Addr, "off")
					continue
				}
				fmt.Printf("%-20s %-8s %12d %12d %12d %9d %10d %14d %12v\n",
					ws.Addr, "on",
					ws.AppendedLSN, ws.DurableLSN, ws.CheckpointLSN,
					ws.Segments, ws.Fsyncs,
					ws.ReplayRecords, time.Duration(ws.ReplayNs))
			}
		}
	case "stats":
		var merged obs.Snapshot
		for i := 0; i < dir.NumShards(); i++ {
			rs, err := dir.Shard(cluster.ShardID(i))
			exitOn(err)
			for _, addr := range rs.Replicas() {
				resp, err := net.Call(ctx, addr, wire.StatsRequest{Detailed: true})
				if err != nil {
					fmt.Printf("%-20s unreachable: %v\n", addr, err)
					continue
				}
				st, ok := resp.(wire.StatsResponse)
				if !ok {
					// A replica that answered with something else (an old
					// binary, a misrouted error value) is reported, not
					// silently skipped.
					fmt.Printf("%-20s error: unexpected reply %T\n", addr, resp)
					continue
				}
				role := "backup"
				if st.Primary {
					role = "primary"
				}
				fmt.Printf("%-20s shard %d %-7s gets=%d puts=%d dels=%d prepares=%d commits=%d aborts=%d repl=%d wm=%v\n",
					addr, st.Shard, role, st.Gets, st.Puts, st.Deletes, st.Prepares, st.Commits, st.Aborts, st.ReplOps, st.Watermark)
				merged.Merge(st.Obs)
			}
		}
		printLatencyTable("transaction stages (cluster-wide)", merged, "milana_txn_stage_ns")
		printLatencyTable("server op latency (cluster-wide)", merged, "semel_serve_ns")
		printLatencyTable("server stage ledger (per-request attribution)", merged, "server_stage_ledger_ns")
		printCounterTable("abort reasons", merged, "milana_aborts_total")
		printCounterTable("sweep outcomes", merged, "milana_sweep_total")
		printCounterTable("admission sheds (by priority)", merged, "admission_shed_total")
		printCounterTable("deadline drops (admission)", merged, "admission_deadline_dropped_total")
		printCounterTable("deadline drops (wire)", merged, "transport_deadline_expired_total")
		printExemplars(merged, "semel_serve_ns")
	case "audit":
		raw := len(args) > 1 && args[1] == "json"
		runAudit(ctx, net, dir, raw)
	case "top":
		runTop(net, dir, *timeout, *interval, *rounds)
	case "history":
		runHistory(ctx, net, dir, args[1:], *samples)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", args[0])
		os.Exit(2)
	}
}

// printTxnStages renders the client stage ledger folded over the whole
// milctl txn (every attempt, if it retried) as one line of where the wall
// time went. Stages that never accrued time are omitted.
func printTxnStages(snap obs.Snapshot) {
	e2e := snap.Hists["milana_stage_ledger_e2e_ns"]
	if e2e.Count == 0 {
		return
	}
	var parts []string
	for _, name := range obs.StageNames() {
		if sum := snap.Hists[obs.WithLabel("milana_stage_ledger_ns", "stage", name)].Sum; sum > 0 {
			parts = append(parts, fmt.Sprintf("%s %v", name, time.Duration(sum).Round(time.Microsecond)))
		}
	}
	fmt.Printf("stages (%d attempts, e2e %v): %s\n",
		e2e.Count, time.Duration(e2e.Sum).Round(time.Microsecond), strings.Join(parts, ", "))
}

// parseTraceID accepts either a transaction ID in "client.seq" form (the IDs
// printed in server logs and abort errors) or a raw hex trace ID.
func parseTraceID(s string) (uint64, error) {
	if c, seq, ok := strings.Cut(s, "."); ok {
		var id wire.TxnID
		if _, err := fmt.Sscanf(c, "%d", &id.Client); err != nil {
			return 0, fmt.Errorf("bad txn id %q: %v", s, err)
		}
		if _, err := fmt.Sscanf(seq, "%d", &id.Seq); err != nil {
			return 0, fmt.Errorf("bad txn id %q: %v", s, err)
		}
		return id.TraceID(), nil
	}
	var tid uint64
	if _, err := fmt.Sscanf(s, "%x", &tid); err != nil {
		return 0, fmt.Errorf("bad trace id %q (want hex id or client.seq): %v", s, err)
	}
	return tid, nil
}

// printStitchedTrace pulls the trace's spans and clock-health estimates from
// every replica of every shard (plus the local client store, when given),
// aligns them by each node's estimated clock offset, and renders one
// timeline with residual-uncertainty annotations.
func printStitchedTrace(ctx context.Context, net transport.Client, dir *cluster.Directory, tid uint64, local *obs.SpanStore, localClk clock.Clock) {
	col := obs.NewCollector()
	if local != nil {
		col.AddSpans(local.ForTrace(tid))
		if hr, ok := localClk.(clock.HealthReporter); ok {
			h := hr.Health()
			col.SetNodeClock(obs.NodeClock{Node: local.Node(), OffsetNs: h.OffsetNs, UncertaintyNs: h.UncertaintyNs})
		}
	}
	for i := 0; i < dir.NumShards(); i++ {
		rs, err := dir.Shard(cluster.ShardID(i))
		exitOn(err)
		for _, addr := range rs.Replicas() {
			resp, err := net.Call(ctx, addr, wire.TraceRequest{TraceID: tid})
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s unreachable: %v\n", addr, err)
				continue
			}
			tr, ok := resp.(wire.TraceResponse)
			if !ok {
				fmt.Fprintf(os.Stderr, "%s: unexpected reply %T\n", addr, resp)
				continue
			}
			col.AddSpans(tr.Spans)
			col.SetNodeClock(obs.NodeClock{Node: tr.Addr, OffsetNs: tr.Clock.OffsetNs, UncertaintyNs: tr.Clock.UncertaintyNs})
		}
	}
	fmt.Print(col.Assemble(tid).Render())
}

// labelValue extracts the first label value from a metric name:
// `x{stage="prepare"}` → "prepare". Unlabeled names return themselves.
func labelValue(name string) string {
	i := strings.IndexByte(name, '"')
	if i < 0 {
		return name
	}
	j := strings.IndexByte(name[i+1:], '"')
	if j < 0 {
		return name
	}
	return name[i+1 : i+1+j]
}

// printLatencyTable renders percentiles of every histogram under prefix.
func printLatencyTable(title string, snap obs.Snapshot, prefix string) {
	var names []string
	for name, h := range snap.Hists {
		if strings.HasPrefix(name, prefix) && h.Count > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Printf("\n%s\n", title)
	fmt.Printf("  %-16s %10s %12s %12s %12s\n", "", "count", "p50", "p95", "p99")
	for _, name := range names {
		h := snap.Hists[name]
		p50, p95, p99, _ := h.Percentiles()
		fmt.Printf("  %-16s %10d %12v %12v %12v\n",
			labelValue(name), h.Count, time.Duration(p50), time.Duration(p95), time.Duration(p99))
	}
}

// printCounterTable renders every non-zero counter under prefix.
func printCounterTable(title string, snap obs.Snapshot, prefix string) {
	var names []string
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, prefix) && v > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Printf("\n%s\n", title)
	for _, name := range names {
		fmt.Printf("  %-24s %d\n", labelValue(name), snap.Counters[name])
	}
}

// printExemplars renders the slowest remembered traces for every histogram
// under prefix, so a tail spike in the latency table above is one
// `milctl trace` away from its stitched timeline.
func printExemplars(snap obs.Snapshot, prefix string) {
	var names []string
	for name, h := range snap.Hists {
		if strings.HasPrefix(name, prefix) && len(h.TopExemplars(1)) > 0 {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Printf("\nslowest traced requests (inspect with: milctl trace <id>)\n")
	for _, name := range names {
		for _, ex := range snap.Hists[name].TopExemplars(3) {
			fmt.Printf("  %-16s %12v-%-12v trace %016x\n",
				labelValue(name), time.Duration(ex.LoNs), time.Duration(ex.HiNs), ex.TraceID)
		}
	}
}

// forEachReplica calls fn with every replica address of every shard.
func forEachReplica(dir *cluster.Directory, fn func(shard int, addr string)) {
	for i := 0; i < dir.NumShards(); i++ {
		rs, err := dir.Shard(cluster.ShardID(i))
		exitOn(err)
		for _, addr := range rs.Replicas() {
			fn(i, addr)
		}
	}
}

// runAudit pulls the online-audit state from every replica: a per-node
// summary line, then every retained flight-recorder artifact. With raw set,
// artifacts are dumped as their original JSON instead of the condensed view.
func runAudit(ctx context.Context, net transport.Client, dir *cluster.Directory, raw bool) {
	fmt.Printf("%-20s %-8s %-10s %8s %8s %8s %8s %6s %6s\n",
		"replica", "enabled", "profile", "pending", "unknown", "checked", "skipped", "convc", "epsv")
	type nodeArt struct {
		addr string
		blob []byte
	}
	var arts []nodeArt
	forEachReplica(dir, func(_ int, addr string) {
		resp, err := net.Call(ctx, addr, wire.AuditRequest{})
		if err != nil {
			fmt.Printf("%-20s unreachable: %v\n", addr, err)
			return
		}
		ar, ok := resp.(wire.AuditResponse)
		if !ok {
			fmt.Printf("%-20s error: unexpected reply %T\n", addr, resp)
			return
		}
		fmt.Printf("%-20s %-8v %-10s %8d %8d %8d %8d %6d %6d\n",
			ar.Addr, ar.Enabled, ar.Profile, ar.Pending, ar.UnknownRetained,
			ar.WindowsChecked, ar.WindowsSkipped, ar.Convictions, ar.EpsilonViolations)
		for _, blob := range ar.Artifacts {
			arts = append(arts, nodeArt{addr: ar.Addr, blob: blob})
		}
	})
	if len(arts) == 0 {
		fmt.Println("\nno artifacts recorded")
		return
	}
	fmt.Printf("\n%d artifact(s)\n", len(arts))
	for _, na := range arts {
		if raw {
			fmt.Printf("--- %s ---\n%s\n", na.addr, na.blob)
			continue
		}
		var art audit.Artifact
		if err := json.Unmarshal(na.blob, &art); err != nil {
			fmt.Printf("  %s: undecodable artifact: %v\n", na.addr, err)
			continue
		}
		fmt.Printf("  [%s #%d] %s %s\n", na.addr, art.Seq, art.Kind, art.Wallclock)
		switch art.Kind {
		case audit.KindConviction:
			fmt.Printf("    anomaly: %s\n", art.Anomaly)
			if len(art.Cycle) > 0 {
				fmt.Printf("    cycle:")
				for _, e := range art.Cycle {
					fmt.Printf(" %v-%s->%v", e.From, e.Kind, e.To)
				}
				fmt.Println()
			}
			fmt.Printf("    window: %d txns, cut %v, %d span(s) attached\n",
				len(art.Window), art.Cut, len(art.Spans))
		case audit.KindEpsilonViolation:
			fmt.Printf("    txn %v commit_ts %v exceeded bound by %v (epsilon %v)\n",
				art.TxnID, art.CommitTs, time.Duration(-art.MarginNs), time.Duration(art.Epsilon))
		case audit.KindWatchdogAlert:
			fmt.Printf("    rule %s convicted %q: %s (value %g, threshold %g)\n",
				art.Rule, art.Series, art.Anomaly, art.Value, art.Threshold)
		}
	}
}

// topSample is one refresh worth of cluster-wide observations.
type topSample struct {
	when      time.Time
	commits   int64
	aborts    int64
	merged    obs.Snapshot
	wmLagMax  time.Duration
	epsViol   int64
	convc     int64
	unreached int
}

// gatherTop polls every replica once for stats, time health, and audit state.
func gatherTop(ctx context.Context, net transport.Client, dir *cluster.Directory) topSample {
	s := topSample{when: time.Now()}
	forEachReplica(dir, func(_ int, addr string) {
		resp, err := net.Call(ctx, addr, wire.StatsRequest{Detailed: true})
		if err != nil {
			s.unreached++
			return
		}
		st, ok := resp.(wire.StatsResponse)
		if !ok {
			s.unreached++
			return
		}
		// Commit/abort decisions are recorded on primaries; backups see
		// only replication traffic, so summing across roles is safe.
		if st.Primary {
			s.commits += int64(st.Commits)
			s.aborts += int64(st.Aborts)
		}
		s.merged.Merge(st.Obs)
		if resp, err := net.Call(ctx, addr, wire.TimeHealthRequest{}); err == nil {
			if th, ok := resp.(wire.TimeHealthResponse); ok {
				if lag := time.Duration(th.WatermarkLagNs); lag > s.wmLagMax {
					s.wmLagMax = lag
				}
			}
		}
		if resp, err := net.Call(ctx, addr, wire.AuditRequest{}); err == nil {
			if ar, ok := resp.(wire.AuditResponse); ok && ar.Enabled {
				s.epsViol += ar.EpsilonViolations
				s.convc += ar.Convictions
			}
		}
	})
	return s
}

// runTop renders a single-screen, auto-refreshing cluster view. Each refresh
// repolls every replica with a fresh timeout; throughput is the commit delta
// between consecutive refreshes.
func runTop(net transport.Client, dir *cluster.Directory, timeout, interval time.Duration, rounds int) {
	var prev *topSample
	for n := 0; rounds == 0 || n < rounds; n++ {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		s := gatherTop(ctx, net, dir)
		cancel()

		fmt.Print("\033[2J\033[H") // clear screen, cursor home
		fmt.Printf("milctl top — %s  (refresh %v", s.when.Format("15:04:05"), interval)
		if s.unreached > 0 {
			fmt.Printf(", %d replica(s) unreachable", s.unreached)
		}
		fmt.Println(")")

		if prev != nil {
			dt := s.when.Sub(prev.when).Seconds()
			if dt > 0 {
				fmt.Printf("\nthroughput: %8.1f commits/s  %8.1f aborts/s\n",
					float64(s.commits-prev.commits)/dt, float64(s.aborts-prev.aborts)/dt)
			}
		} else {
			fmt.Printf("\nthroughput: (first sample: %d commits, %d aborts total)\n", s.commits, s.aborts)
		}

		var stages obs.HistogramSnapshot
		for name, h := range s.merged.Hists {
			if strings.HasPrefix(name, "milana_txn_stage_ns") {
				stages.Merge(h)
			}
		}
		p50, p95, p99, _ := stages.Percentiles()
		fmt.Printf("latency:    p50=%-10v p95=%-10v p99=%-10v (all txn stages)\n",
			time.Duration(p50), time.Duration(p95), time.Duration(p99))
		fmt.Printf("watermark:  max lag %v\n", s.wmLagMax)
		fmt.Printf("audit:      %d epsilon violation(s), %d conviction(s)\n", s.epsViol, s.convc)
		var sheds, ddrops int64
		for name, v := range s.merged.Counters {
			if strings.HasPrefix(name, "admission_shed_total") {
				sheds += v
			}
			if name == "admission_deadline_dropped_total" || name == "transport_deadline_expired_total" {
				ddrops += v
			}
		}
		fmt.Printf("overload:   %d shed, %d dropped at deadline\n", sheds, ddrops)
		printLatencyTable("server stage breakdown", s.merged, "server_stage_ledger_ns")
		printCounterTable("abort reasons", s.merged, "milana_aborts_total")
		printCounterTable("admission sheds (by priority)", s.merged, "admission_shed_total")
		printCounterTable("watchdog alerts", s.merged, "obs_alerts_total")

		prev = &s
		if rounds == 0 || n < rounds-1 {
			time.Sleep(interval)
		}
	}
}

// runHistory pulls recent samples from every replica's embedded time-series
// store and renders one sparkline per matching series. Patterns are substring
// filters over series names; with none, every series prints (noisy — filter).
func runHistory(ctx context.Context, net transport.Client, dir *cluster.Directory, patterns []string, lastN int) {
	forEachReplica(dir, func(_ int, addr string) {
		resp, err := net.Call(ctx, addr, wire.TSDBRequest{Patterns: patterns, LastN: lastN})
		if err != nil {
			fmt.Printf("%-20s unreachable: %v\n", addr, err)
			return
		}
		tr, ok := resp.(wire.TSDBResponse)
		if !ok {
			fmt.Printf("%-20s error: unexpected reply %T\n", addr, resp)
			return
		}
		if tr.IntervalNs == 0 {
			fmt.Printf("%-20s no time-series store (started with -tsdb-off?)\n", tr.Addr)
			return
		}
		if len(tr.Series) == 0 {
			fmt.Printf("%-20s no series match %v\n", tr.Addr, patterns)
			return
		}
		fmt.Printf("%s (1 sample per %v, oldest→newest):\n", tr.Addr, time.Duration(tr.IntervalNs))
		for _, sd := range tr.Series {
			vals := sd.Samples()
			lo, hi := vals[0], vals[0]
			for _, v := range vals {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			fmt.Printf("  %-56s %s  min=%d max=%d last=%d\n",
				sd.Name, sparkline(vals, lo, hi), lo, hi, vals[len(vals)-1])
		}
	})
}

// sparkline renders vals as one block character each, scaled to [lo, hi].
func sparkline(vals []int64, lo, hi int64) string {
	blocks := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if hi > lo {
			idx = int(float64(v-lo) / float64(hi-lo) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

func requireArgs(args []string, n int) {
	if len(args) < n {
		fmt.Fprintf(os.Stderr, "%s: missing arguments\n", args[0])
		os.Exit(2)
	}
}

func exitOn(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
