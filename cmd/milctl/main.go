// Command milctl is a command-line client for semeld servers.
//
//	milctl -shards ":7001,:7002,:7003" get mykey
//	milctl -shards ":7001,:7002,:7003" put mykey myvalue
//	milctl -shards ":7001,:7002,:7003" del mykey
//	milctl -shards ":7001,:7002,:7003" txn get a put b 2 get c
//
// The txn subcommand executes its operation list inside one MILANA
// transaction: "get <key>" reads, "put <key> <value>" writes; the
// transaction commits at the end (read-only transactions validate locally).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/milana"
	"repro/internal/semel"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	var (
		shards  = flag.String("shards", ":7001", "';'-separated shards, each a ','-separated replica list (primary first)")
		timeout = flag.Duration("timeout", 5*time.Second, "per-command timeout")
		id      = flag.Uint("id", 1, "client id (must be unique per concurrent client)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: milctl [flags] get|put|del|txn|stats ...")
		os.Exit(2)
	}

	var sets []cluster.ReplicaSet
	for _, s := range strings.Split(*shards, ";") {
		addrs := strings.Split(s, ",")
		sets = append(sets, cluster.ReplicaSet{Primary: addrs[0], Backups: addrs[1:]})
	}
	dir, err := cluster.New(sets)
	if err != nil {
		log.Fatal(err)
	}
	net := transport.NewTCPClient()
	defer net.Close()
	clk := clock.NewPerfect(clock.NewSystemSource(), uint32(*id))
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch args[0] {
	case "get":
		requireArgs(args, 2)
		cl := semel.NewClient(clk, net, dir)
		val, ver, found, err := cl.Get(ctx, []byte(args[1]))
		exitOn(err)
		if !found {
			fmt.Println("(not found)")
			return
		}
		fmt.Printf("%s\t(version %v)\n", val, ver)
	case "put":
		requireArgs(args, 3)
		cl := semel.NewClient(clk, net, dir)
		ver, err := cl.Put(ctx, []byte(args[1]), []byte(args[2]))
		exitOn(err)
		fmt.Printf("ok (version %v)\n", ver)
	case "del":
		requireArgs(args, 2)
		cl := semel.NewClient(clk, net, dir)
		exitOn(cl.Delete(ctx, []byte(args[1])))
		fmt.Println("ok")
	case "txn":
		cl := milana.NewClient(clk, net, dir)
		err := cl.RunTransaction(ctx, func(t *milana.Txn) error {
			ops := args[1:]
			for len(ops) > 0 {
				switch ops[0] {
				case "get":
					if len(ops) < 2 {
						return fmt.Errorf("txn get needs a key")
					}
					val, found, err := t.Get(ctx, []byte(ops[1]))
					if err != nil {
						return err
					}
					if found {
						fmt.Printf("%s = %s\n", ops[1], val)
					} else {
						fmt.Printf("%s = (not found)\n", ops[1])
					}
					ops = ops[2:]
				case "put":
					if len(ops) < 3 {
						return fmt.Errorf("txn put needs key and value")
					}
					if err := t.Put([]byte(ops[1]), []byte(ops[2])); err != nil {
						return err
					}
					ops = ops[3:]
				default:
					return fmt.Errorf("unknown txn op %q", ops[0])
				}
			}
			return nil
		})
		exitOn(err)
		fmt.Println("committed")
	case "stats":
		for i := 0; i < dir.NumShards(); i++ {
			rs, err := dir.Shard(cluster.ShardID(i))
			exitOn(err)
			for _, addr := range rs.Replicas() {
				resp, err := net.Call(ctx, addr, wire.StatsRequest{})
				if err != nil {
					fmt.Printf("%-20s unreachable: %v\n", addr, err)
					continue
				}
				st, ok := resp.(wire.StatsResponse)
				if !ok {
					continue
				}
				role := "backup"
				if st.Primary {
					role = "primary"
				}
				fmt.Printf("%-20s shard %d %-7s gets=%d puts=%d dels=%d prepares=%d commits=%d aborts=%d repl=%d wm=%v\n",
					addr, st.Shard, role, st.Gets, st.Puts, st.Deletes, st.Prepares, st.Commits, st.Aborts, st.ReplOps, st.Watermark)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", args[0])
		os.Exit(2)
	}
}

func requireArgs(args []string, n int) {
	if len(args) < n {
		fmt.Fprintf(os.Stderr, "%s: missing arguments\n", args[0])
		os.Exit(2)
	}
}

func exitOn(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
