// Command loadgen drives the Retwis benchmark (Table 2 of the paper)
// against a semeld cluster over TCP and reports throughput, latency and
// abort statistics — a network-deployment counterpart of cmd/experiments.
//
//	semeld -listen :7001 &
//	loadgen -shards ":7001" -clients 8 -duration 10s -alpha 0.6
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/milana"
	"repro/internal/resilience"
	"repro/internal/retwis"
	"repro/internal/semel"
	"repro/internal/transport"
)

// backoffBusy sleeps out a shed server's RetryAfter hint (falling back to
// 5ms) and reports whether err was an admission-control pushback at all —
// the load generator must be a well-behaved client, not fail the run on
// the first shed.
func backoffBusy(ctx context.Context, err error) bool {
	if !resilience.IsServerBusy(err) {
		return false
	}
	d, ok := resilience.RetryAfterFrom(err)
	if !ok || d <= 0 {
		d = 5 * time.Millisecond
	}
	select {
	case <-time.After(d):
	case <-ctx.Done():
	}
	return true
}

func main() {
	var (
		shards    = flag.String("shards", ":7001", "';'-separated shards, each a ','-separated replica list (primary first)")
		clients   = flag.Int("clients", 8, "concurrent benchmark instances")
		duration  = flag.Duration("duration", 10*time.Second, "measured run length")
		users     = flag.Int("users", 1000, "Retwis user population (pre-populated)")
		alpha     = flag.Float64("alpha", 0.6, "Zipf contention parameter")
		readHeavy = flag.Bool("readheavy", false, "use the 75% read-only mix instead of Table 2's default")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var sets []cluster.ReplicaSet
	for _, s := range strings.Split(*shards, ";") {
		addrs := strings.Split(s, ",")
		sets = append(sets, cluster.ReplicaSet{Primary: addrs[0], Backups: addrs[1:]})
	}
	dir, err := cluster.New(sets)
	if err != nil {
		log.Fatal(err)
	}
	src := clock.NewSystemSource()
	ctx := context.Background()

	// Populate.
	fmt.Printf("populating %d users (%d keys)...\n", *users, 4**users)
	popNet := transport.NewTCPClient()
	defer popNet.Close()
	kv := semel.NewClient(clock.NewPerfect(src, 1_000_000), popNet, dir)
	keys := retwis.PopulationKeys(*users)
	var wg sync.WaitGroup
	keyCh := make(chan string, 64)
	var popErr atomic.Value
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := range keyCh {
				if popErr.Load() != nil {
					continue
				}
				for {
					_, err := kv.Put(ctx, []byte(k), []byte("seed"))
					if err == nil {
						break
					}
					if backoffBusy(ctx, err) {
						continue
					}
					popErr.CompareAndSwap(nil, err)
					break
				}
			}
		}()
	}
	for _, k := range keys {
		keyCh <- k
	}
	close(keyCh)
	wg.Wait()
	if err, ok := popErr.Load().(error); ok && err != nil {
		log.Fatalf("populate: %v", err)
	}

	// Run.
	mix := retwis.DefaultMix
	if *readHeavy {
		mix = retwis.ReadHeavyMix
	}
	fmt.Printf("running %d clients for %v (α=%.2f)...\n", *clients, *duration, *alpha)
	runCtx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()
	var latSum, latN atomic.Int64
	txcs := make([]*milana.Client, *clients)
	start := time.Now()
	for i := range txcs {
		net := transport.NewTCPClient()
		defer net.Close()
		txcs[i] = milana.NewClient(clock.NewPerfect(src, uint32(i+1)), net, dir)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := txcs[i]
			gen := retwis.NewGenerator(retwis.Options{
				Users: *users, Alpha: *alpha, Mix: mix,
				Seed: *seed + int64(i)*7919, FreshUserBase: *users + i*10_000_000,
			})
			decided := 0
			for runCtx.Err() == nil {
				spec := gen.Next()
				t0 := time.Now()
				for {
					t := cl.Begin()
					err := retwis.Execute(runCtx, t, spec)
					if err == nil {
						err = t.Commit(runCtx)
					}
					if err == nil {
						break
					}
					t.Abort()
					if runCtx.Err() != nil {
						return
					}
					if backoffBusy(runCtx, err) {
						continue
					}
					if !errors.Is(err, milana.ErrAborted) {
						return
					}
				}
				latSum.Add(int64(time.Since(t0)))
				latN.Add(1)
				if decided++; decided%500 == 0 {
					cl.BroadcastWatermark(runCtx)
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total milana.Stats
	for _, cl := range txcs {
		st := cl.Stats()
		total.Committed += st.Committed
		total.Aborted += st.Aborted
		total.LocalValidated += st.LocalValidated
		total.ReadOnly += st.ReadOnly
	}
	fmt.Printf("\nelapsed:          %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("committed:        %d (%.0f txn/s)\n", total.Committed, float64(total.Committed)/elapsed.Seconds())
	fmt.Printf("aborted:          %d (%.2f%% abort rate)\n", total.Aborted,
		100*float64(total.Aborted)/float64(max64(1, total.Committed+total.Aborted)))
	fmt.Printf("read-only:        %d (%d validated locally, zero round trips)\n", total.ReadOnly, total.LocalValidated)
	if n := latN.Load(); n > 0 {
		fmt.Printf("avg txn latency:  %v\n", time.Duration(latSum.Load()/n).Round(time.Microsecond))
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
