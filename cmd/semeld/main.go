// Command semeld runs one SEMEL/MILANA storage replica over TCP.
//
// A three-replica shard on one machine:
//
//	semeld -listen :7001 -shard 0 -replica 0 -peers :7001,:7002,:7003 &
//	semeld -listen :7002 -shard 0 -replica 1 -peers :7001,:7002,:7003 &
//	semeld -listen :7003 -shard 0 -replica 2 -peers :7001,:7002,:7003 &
//
// Replica 0 of each shard starts as primary. The shard map is static: every
// replica must be started with the same -shards description, formatted as
// semicolon-separated shards, each a comma-separated replica address list
// (primary first). When -peers is given, a single shard is assumed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/audit"
	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/semel"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/internal/wal"
)

func main() {
	var (
		listen  = flag.String("listen", ":7001", "address to listen on")
		shard   = flag.Int("shard", 0, "shard id this replica serves")
		replica = flag.Int("replica", 0, "replica index within the shard (0 = initial primary)")
		peers   = flag.String("peers", "", "comma-separated replica addresses of this shard, primary first")
		shards  = flag.String("shards", "", "full shard map: ';'-separated shards, each a ','-separated address list")
		backend = flag.String("backend", core.BackendDRAM, "storage backend: dram|mftl|vftl|sftl")
		gobWire = flag.Bool("gob", false, "force the gob wire codec on all connections (escape hatch for mixed-version clusters; normally the binary codec is negotiated per frame)")
		metrics = flag.String("metrics", "", "address for the HTTP debug endpoint (/metrics, /metrics.json, /debug/timehealth, /debug/audit, /debug/pprof/); empty disables")
		slowlog = flag.Duration("slowlog", 0, "log one structured line for any RPC slower than this (0 disables)")
		skewWin = flag.Duration("skew-window", 0, "validation-abort margins within this window count as skew-induced in abort provenance (0 = all conflict)")

		auditSample  = flag.Float64("audit-sample", 0, "online-audit window sampling rate in [0,1]; 0 disables the auditor")
		auditEpsilon = flag.Duration("audit-epsilon", 500*time.Microsecond, "commit-wait bound epsilon assumed by the auditor's receive-timestamp invariant monitor")
		auditDir     = flag.String("audit-dir", "", "directory for anomaly flight-recorder artifacts (empty keeps them in memory only)")

		walDir    = flag.String("wal-dir", "", "directory for the durable write-ahead log; empty runs without one (DRAM-only, no cold-restart recovery)")
		walSeg    = flag.Int64("wal-segment-bytes", 0, "rotate WAL segments past this size (0 = 4 MiB)")
		ckptEvery = flag.Int("checkpoint-every", 0, "WAL records between checkpoints (0 = 1024, negative disables checkpointing)")

		tsdbInterval = flag.Duration("tsdb-interval", time.Second, "embedded time-series store sampling period")
		tsdbWindow   = flag.Int("tsdb-window", 900, "samples retained per series (window = interval × this)")
		tsdbOff      = flag.Bool("tsdb-off", false, "disable the embedded time-series store and its regression watchdog")
		commitWait   = flag.Duration("commit-wait", 0, "hold each prepare until the local clock clears commit_ts plus this bound (0 disables)")

		callTimeout = flag.Duration("call-timeout", transport.DefaultCallTimeout, "default deadline for outbound RPCs (replication fan-out) when the caller's context has none; negative disables")

		admMaxInflight = flag.Int("admission-max-inflight", 0, "admission control: shed reads above half of this many in-flight requests, prepares above 9/10 (0 disables admission control)")
		admQueueDelay  = flag.Duration("admission-queue-delay", 20*time.Millisecond, "admission control: shed reads queued longer than this, prepares past 4x (needs -admission-max-inflight)")
	)
	flag.Parse()

	var sets []cluster.ReplicaSet
	switch {
	case *shards != "":
		for _, s := range strings.Split(*shards, ";") {
			addrs := strings.Split(s, ",")
			if len(addrs) == 0 || addrs[0] == "" {
				log.Fatalf("bad -shards entry %q", s)
			}
			sets = append(sets, cluster.ReplicaSet{Primary: addrs[0], Backups: addrs[1:]})
		}
	case *peers != "":
		addrs := strings.Split(*peers, ",")
		sets = []cluster.ReplicaSet{{Primary: addrs[0], Backups: addrs[1:]}}
	default:
		sets = []cluster.ReplicaSet{{Primary: *listen}}
	}
	dir, err := cluster.New(sets)
	if err != nil {
		log.Fatal(err)
	}

	be, err := buildBackend(*backend)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := dir.Shard(cluster.ShardID(*shard))
	if err != nil {
		log.Fatal(err)
	}
	replicas := rs.Replicas()
	if *replica < 0 || *replica >= len(replicas) {
		log.Fatalf("replica index %d out of range: shard %d has %d replicas", *replica, *shard, len(replicas))
	}
	addr := replicas[*replica]

	// One registry feeds everything on /metrics: the semel server, the
	// auditor, and the wire layer (wire_bytes_total{dir,codec} plus
	// encode/decode histograms from both the replication client and the
	// serving side).
	reg := obs.NewRegistry()
	opts := semel.ServerOptions{
		Addr:                 addr,
		Shard:                cluster.ShardID(*shard),
		Primary:              *replica == 0,
		Backend:              be,
		Net:                  transport.NewTCPClientOpts(transport.TCPClientOptions{ForceGob: *gobWire, Metrics: reg, CallTimeout: *callTimeout}),
		Dir:                  dir,
		Clock:                clock.NewPerfect(clock.NewSystemSource(), uint32(1<<20+*shard*100+*replica)),
		SlowRequestThreshold: *slowlog,
		SkewWindow:           *skewWin,
		Metrics:              reg,
		CommitWait:           *commitWait,
		CheckpointEvery:      *ckptEvery,
	}
	if *walDir != "" {
		w, err := wal.Open(wal.Options{Dir: *walDir, SegmentBytes: *walSeg, Metrics: reg})
		if err != nil {
			log.Fatalf("semeld: opening WAL: %v", err)
		}
		defer w.Close()
		opts.Log = w
	}
	if *admMaxInflight > 0 {
		opts.Admission = resilience.NewAdmission(resilience.AdmissionOptions{
			MaxInflight:   *admMaxInflight,
			MaxQueueDelay: *admQueueDelay,
			Metrics:       reg,
		})
	}
	// The embedded time-series store samples the registry once per interval
	// (including Go runtime health) and runs the default regression watchdog
	// over the ring; milctl history and /debug/tsdb read it back.
	var tsdb *obs.TSDB
	var dog *obs.Watchdog
	if !*tsdbOff {
		tsdb = obs.NewTSDB(reg, obs.TSDBOptions{
			Interval: *tsdbInterval,
			Window:   *tsdbWindow,
			Runtime:  true,
		})
		dog = obs.NewWatchdog(reg, obs.DefaultWatchdogRules()...)
		tsdb.Attach(dog)
		opts.TSDB = tsdb
	}
	// The standalone daemon has no true-clock oracle, so the auditor runs in
	// receive-timestamp mode: commit timestamps carried by prepares are
	// checked against this replica's receipt time plus 2ε. Auditor and
	// server share one registry so audit_* metrics ride /metrics.
	var aud *audit.Auditor
	if *auditSample > 0 {
		aud = audit.New(audit.Options{
			SampleRate:  *auditSample,
			Epsilon:     *auditEpsilon,
			Profile:     "tcp",
			ArtifactDir: *auditDir,
			Metrics:     opts.Metrics,
		})
		opts.Auditor = aud
	}
	srv, err := semel.NewServer(opts)
	if err != nil {
		log.Fatal(err)
	}
	if aud != nil {
		// The watermark and span ring only exist once the server does.
		aud.SetWatermark(srv.Watermark)
		aud.SetSpanSource(srv.Spans().ForTrace)
		aud.Start()
		defer aud.Close()
	}
	if tsdb != nil {
		// Watchdog convictions land in the log and — when the auditor runs —
		// on the flight-recorder artifact trail next to serializability
		// convictions (RecordAlert is nil-safe).
		dog.OnAlert(func(a obs.Alert) {
			log.Printf("semeld: watchdog alert rule=%s series=%q value=%g threshold=%g: %s",
				a.Rule, a.Series, a.Value, a.Threshold, a.Message)
			aud.RecordAlert(a.Rule, a.Series, a.Message, a.Value, a.Threshold)
		})
		tsdb.Start()
		defer tsdb.Close()
	}
	tcp, err := transport.NewTCPServerOpts(*listen, srv, transport.TCPServerOptions{ForceGob: *gobWire, Metrics: reg})
	if err != nil {
		log.Fatal(err)
	}
	if *metrics != "" {
		mux := http.NewServeMux()
		mux.Handle("/", obs.Handler(srv.Metrics()))
		mux.HandleFunc("/debug/timehealth", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(srv.TimeHealth())
		})
		mux.HandleFunc("/debug/audit", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Summary   audit.Summary     `json:"summary"`
				Artifacts []*audit.Artifact `json:"artifacts"`
			}{aud.Stats(), aud.Artifacts()})
		})
		if tsdb != nil {
			mux.Handle("/debug/tsdb", tsdb)
		}
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			if err := http.ListenAndServe(*metrics, mux); err != nil {
				log.Printf("semeld: metrics endpoint: %v", err)
			}
		}()
		fmt.Printf("semeld: metrics on http://%s/metrics (also /debug/timehealth, /debug/audit, /debug/tsdb, /debug/pprof/)\n", *metrics)
	}
	wireMode := "binary codec v1 (gob fallback)"
	if *gobWire {
		wireMode = "gob (forced)"
	}
	fmt.Printf("semeld: shard %d replica %d (%s) serving on %s, backend %s, wire %s\n",
		*shard, *replica, map[bool]string{true: "primary", false: "backup"}[*replica == 0], tcp.Addr(), *backend, wireMode)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	srv.Close()
	_ = tcp.Close()
}

func buildBackend(kind string) (storage.Backend, error) {
	be, _, err := core.NewBackend(core.BackendOptions{Kind: kind, RealFlashTiming: true})
	return be, err
}
