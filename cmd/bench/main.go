// Command bench runs the write-path and read-path performance benchmarks
// and emits a JSON perf trajectory (BENCH_9.json by default): ops/sec plus
// p50/p95 service latencies pulled from the obs histograms, so future PRs
// have concrete numbers to compare against. Compare two trajectory files
// with `go run ./cmd/bench/compare OLD.json NEW.json`.
//
//	go run ./cmd/bench -out BENCH_9.json
//
// Scenario groups:
//
//   - put/unbatched vs put/batched — the replicated SEMEL write path
//     (1 shard × 3 replicas, DRAM) over real loopback TCP at -conc
//     concurrent clients. Over a real transport every message costs
//     encoding and syscalls, so this isolates what batching and the binary
//     wire codec amortize. put/batched-gob forces the gob fallback frames
//     on the same harness: the batched-vs-batched-gob ratio is the codec's
//     end-to-end win.
//   - put/unbatched-flash vs put/batched-flash — the same comparison on
//     MFTL with real flash sleeps and a data-center latency model. This
//     is the end-to-end number; wins here are bounded by the physical
//     critical path, which neither batching nor encoding can remove.
//   - wal/unsynced vs wal/synced — the replicated put path on the
//     in-process bus with and without a durable write-ahead log. The pair
//     differs only in the WAL append + group fsync under every ack, so the
//     ratio is the end-to-end price of crash durability (log-before-ack).
//   - multiget/serial vs multiget/parallel — snapshot reads of 16 keys per
//     call over loopback TCP against DRAM, so the RPC path is the cost.
//     multiget/gob forces gob frames on the parallel harness (the codec
//     comparison); the -flash variants rerun the pair against MFTL with
//     real flash read sleeps, where the win is channel overlap, not CPU.
//   - codec/* — message-level microbenchmarks (testing.Benchmark with
//     allocation counts) for codec-v1 Append+Decode round trips vs the gob
//     fallback, per-message and per-connection-stream flavors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/flash"
	"repro/internal/resilience"
	"repro/internal/semel"
	"repro/internal/storage"
	"repro/internal/transport"
)

type result struct {
	Name        string  `json:"name"`
	Concurrency int     `json:"concurrency"`
	Ops         int64   `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50Micros   float64 `json:"p50_us"`
	P95Micros   float64 `json:"p95_us"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	Notes       string  `json:"notes,omitempty"`
}

type report struct {
	Generated   string   `json:"generated"`
	Duration    string   `json:"duration_per_scenario"`
	Environment string   `json:"environment"`
	Results     []result `json:"results"`
}

var debug = flag.Bool("debug", false, "dump merged metric snapshots after each scenario")

func main() {
	out := flag.String("out", "BENCH_9.json", "output JSON path")
	dur := flag.Duration("dur", 3*time.Second, "measured duration per scenario")
	conc := flag.Int("conc", 64, "concurrent clients (>= 8 for the acceptance numbers)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile covering every scenario to this file (go tool pprof)")
	only := flag.String("only", "", "comma-separated scenario filters (exact name, or substring match); empty runs everything")
	flag.Parse()

	want := func(name string) bool {
		if *only == "" {
			return true
		}
		for _, tok := range strings.Split(*only, ",") {
			tok = strings.TrimSpace(tok)
			if tok == name || (tok != "" && strings.Contains(name, tok)) {
				return true
			}
		}
		return false
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = f.Close()
		}()
	}

	rep := report{
		Generated:   time.Now().UTC().Format(time.RFC3339),
		Duration:    dur.String(),
		Environment: environment(),
	}

	fmt.Printf("%s\n", rep.Environment)

	// ran holds each executed scenario by name, for the ratio lines below.
	ran := map[string]result{}
	record := func(r result) {
		rep.Results = append(rep.Results, r)
		ran[r.Name] = r
		fmt.Printf("  %-22s %9.0f ops/s   p50 %7.0fµs  p95 %7.0fµs\n", r.Name+":", r.OpsPerSec, r.P50Micros, r.P95Micros)
	}
	ratio := func(label, base, opt string) {
		b, okB := ran[base]
		o, okO := ran[opt]
		if okB && okO && b.OpsPerSec > 0 {
			fmt.Printf("  %-22s %.2fx (%s vs %s)\n", label+":", o.OpsPerSec/b.OpsPerSec, opt, base)
		}
	}

	fmt.Printf("put path (DRAM over loopback TCP; isolates RPC amortization), conc=%d:\n", *conc)
	if want("put/unbatched") {
		record(runTCPPut("put/unbatched", true, false, *conc, *dur))
	}
	if want("put/batched") {
		record(runTCPPut("put/batched", false, false, *conc, *dur))
	}
	if want("put/batched-gob") {
		record(runTCPPut("put/batched-gob", false, true, *conc, *dur))
	}
	ratio("batching win", "put/unbatched", "put/batched")
	ratio("codec win", "put/batched-gob", "put/batched")

	fmt.Printf("put path (MFTL, real flash sleeps, DC latency; end-to-end), conc=%d:\n", *conc)
	if want("put/unbatched-flash") {
		record(runPut("put/unbatched-flash", flashPutOptions(true), *conc, *dur, "one replication RPC per put, MFTL + RealSleeper + DC latency"))
	}
	if want("put/batched-flash") {
		record(runPut("put/batched-flash", flashPutOptions(false), *conc, *dur, "replication batcher on, MFTL + RealSleeper + DC latency"))
	}
	ratio("batching win", "put/unbatched-flash", "put/batched-flash")

	fmt.Printf("wal durability (DRAM, in-process bus; what log-before-ack costs), conc=%d:\n", *conc)
	if want("wal/unsynced") {
		record(runPut("wal/unsynced", walPutOptions(""), *conc, *dur, "no WAL: acks leave memory only (an amnesia kill loses them)"))
	}
	if want("wal/synced") {
		walRoot, err := os.MkdirTemp("", "bench-wal-")
		if err != nil {
			fatal(err)
		}
		record(runPut("wal/synced", walPutOptions(walRoot), *conc, *dur, "segmented WAL, group fsync, log-before-ack on every replica"))
		_ = os.RemoveAll(walRoot)
	}
	ratio("wal cost", "wal/unsynced", "wal/synced")

	fmt.Printf("resilience layer (DRAM, in-process bus; idle-path admission cost), conc=%d:\n", *conc)
	if want("resilience/off") {
		record(runPut("resilience/off", resiliencePutOptions(false), *conc, *dur, "seed behavior: no admission control"))
	}
	if want("resilience/on") {
		record(runPut("resilience/on", resiliencePutOptions(true), *conc, *dur, "admission control on every server (uncontended: nothing sheds, the check itself is the cost)"))
	}
	ratio("resilience cost", "resilience/off", "resilience/on")

	fmt.Printf("multiget fan-out (DRAM over loopback TCP, 16 keys per call), conc=%d:\n", *conc)
	if want("multiget/serial") {
		record(runTCPMultiGet("multiget/serial", true, false, *conc, *dur))
	}
	if want("multiget/parallel") {
		record(runTCPMultiGet("multiget/parallel", false, false, *conc, *dur))
	}
	if want("multiget/gob") {
		record(runTCPMultiGet("multiget/gob", false, true, *conc, *dur))
	}
	ratio("codec win", "multiget/gob", "multiget/parallel")

	fmt.Printf("multiget fan-out (MFTL, real flash read sleeps, 16 keys per call), conc=4:\n")
	if want("multiget/serial-flash") {
		record(runMultiGet("multiget/serial-flash", true, 4, *dur))
	}
	if want("multiget/parallel-flash") {
		record(runMultiGet("multiget/parallel-flash", false, 4, *dur))
	}
	ratio("fan-out win", "multiget/serial-flash", "multiget/parallel-flash")

	if want("codec/") {
		fmt.Printf("codec microbenchmarks (message round trips, allocations counted):\n")
		micro := codecMicrobenchmarks()
		rep.Results = append(rep.Results, micro...)
		for _, r := range micro {
			fmt.Printf("  %-28s %9.0f ns/op  %6d B/op  %4d allocs/op\n", r.Name+":", r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// environment records the two machine properties that bound what these
// numbers can show: the CPU count (CPU-bound paths cannot scale past it)
// and the sleep quantum (every emulated flash/network delay is rounded up
// to it, which compresses latency differences between scenarios).
func environment() string {
	q := measureSleepQuantum()
	return fmt.Sprintf("cpus=%d sleep_quantum~%v (emulated delays round up to the quantum)", runtime.GOMAXPROCS(0), q.Round(10*time.Microsecond))
}

func measureSleepQuantum() time.Duration {
	var tot time.Duration
	const n = 10
	for i := 0; i < n; i++ {
		t0 := time.Now()
		time.Sleep(50 * time.Microsecond)
		tot += time.Since(t0)
	}
	return tot / n
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

// lateHandler lets a TCP listener start before the server behind it exists
// (ports are allocated by the OS, but replica addresses must be known before
// semel.NewServer runs).
type lateHandler struct {
	mu sync.RWMutex
	h  transport.Handler
}

func (l *lateHandler) set(h transport.Handler) {
	l.mu.Lock()
	l.h = h
	l.mu.Unlock()
}

func (l *lateHandler) Serve(ctx context.Context, req any) (any, error) {
	l.mu.RLock()
	h := l.h
	l.mu.RUnlock()
	if h == nil {
		return nil, fmt.Errorf("bench: server not ready")
	}
	return h.Serve(ctx, req)
}

// runTCPPut measures the replicated put path over real loopback TCP: three
// replicas, each its own TCP server, DRAM storage so the transport is the
// only cost. Clients share one connection per server, as one application
// process would. forceGob pins every client (application and replication)
// to the gob fallback frames, isolating the binary codec's contribution on
// an otherwise identical harness.
func runTCPPut(name string, disableBatch, forceGob bool, conc int, dur time.Duration) result {
	const replicas = 3
	handlers := make([]*lateHandler, replicas)
	tcpSrvs := make([]*transport.TCPServer, replicas)
	addrs := make([]string, replicas)
	for i := range handlers {
		handlers[i] = &lateHandler{}
		srv, err := transport.NewTCPServer("127.0.0.1:0", handlers[i])
		if err != nil {
			fatal(err)
		}
		tcpSrvs[i] = srv
		addrs[i] = srv.Addr()
	}
	dir, err := cluster.New([]cluster.ReplicaSet{{Primary: addrs[0], Backups: addrs[1:]}})
	if err != nil {
		fatal(err)
	}
	source := clock.NewSystemSource()
	servers := make([]*semel.Server, replicas)
	nets := make([]*transport.TCPClient, replicas)
	for i := range servers {
		nets[i] = transport.NewTCPClientOpts(transport.TCPClientOptions{ForceGob: forceGob})
		srv, err := semel.NewServer(semel.ServerOptions{
			Addr:                addrs[i],
			Shard:               0,
			Primary:             i == 0,
			Backend:             storage.NewDRAM(),
			Net:                 nets[i],
			Dir:                 dir,
			Clock:               clock.NewPerfect(source, uint32(1<<20+i)),
			LeaseDuration:       -1,
			AntiEntropyInterval: -1,
			// One in-flight flush slot is what makes this group commit: the
			// next batch accumulates for exactly as long as the previous
			// flush takes, so batch size tracks load instead of collapsing
			// to one op per RPC when flushes are fast.
			ReplBatch: semel.BatchOptions{Disabled: disableBatch, Workers: 1},
		})
		if err != nil {
			fatal(err)
		}
		servers[i] = srv
		handlers[i].set(srv)
	}
	cliNet := transport.NewTCPClientOpts(transport.TCPClientOptions{ForceGob: forceGob})
	defer func() {
		for _, s := range servers {
			s.Close()
		}
		for _, s := range tcpSrvs {
			s.Close()
		}
		for _, n := range nets {
			n.Close()
		}
		cliNet.Close()
	}()

	var (
		ops atomic.Int64
		wg  sync.WaitGroup
	)
	val := make([]byte, 64)
	// Untimed warmup: let connections, buffers and the GC reach steady
	// state before the measured window opens.
	warmEnd := time.Now().Add(500 * time.Millisecond)
	start := warmEnd
	deadline := start.Add(dur)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := semel.NewClient(clock.NewPerfect(source, uint32(100+w)), cliNet, dir)
			ctx := context.Background()
			for i := 0; time.Now().Before(deadline); i++ {
				key := []byte(fmt.Sprintf("c%d-k%d", w, i%256))
				if _, err := cl.Put(ctx, key, val); err != nil {
					fatal(fmt.Errorf("tcp put: %w", err))
				}
				if time.Now().After(warmEnd) {
					ops.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	snap := servers[0].Metrics().Snapshot()
	var p50, p95 float64
	if h, ok := snap.Hists[`semel_serve_ns{op="put"}`]; ok {
		p50, p95 = float64(h.Quantile(0.50))/1e3, float64(h.Quantile(0.95))/1e3
	}
	if *debug {
		if h, ok := snap.Hists["semel_repl_batch_ops"]; ok {
			fmt.Printf("    batch ops: n=%d p50=%d p95=%d\n", h.Count, h.Quantile(0.50), h.Quantile(0.95))
		}
		for _, r := range []string{"size", "bytes", "linger", "drain"} {
			fmt.Printf("    flush %-6s %d\n", r, snap.Counters[fmt.Sprintf("semel_repl_flush_total{reason=%q}", r)])
		}
	}
	notes := "replication batcher on (group commit), DRAM over loopback TCP"
	if disableBatch {
		notes = "one replication RPC per put, DRAM over loopback TCP"
	}
	if forceGob {
		notes += ", gob fallback frames forced (codec baseline)"
	}
	return result{
		Name:        name,
		Concurrency: conc,
		Ops:         ops.Load(),
		OpsPerSec:   float64(ops.Load()) / elapsed.Seconds(),
		P50Micros:   p50,
		P95Micros:   p95,
		Notes:       notes,
	}
}

// runTCPMultiGet measures snapshot multigets over real loopback TCP against
// a single DRAM replica: 16 keys per call, so each RPC carries a fat
// request and a fatter response and the encode/decode path dominates.
// serialReads disables the server's per-key fan-out (the PR-2 baseline);
// forceGob pins the connection to gob fallback frames (the codec baseline).
func runTCPMultiGet(name string, serialReads, forceGob bool, conc int, dur time.Duration) result {
	handler := &lateHandler{}
	tcpSrv, err := transport.NewTCPServer("127.0.0.1:0", handler)
	if err != nil {
		fatal(err)
	}
	dir, err := cluster.New([]cluster.ReplicaSet{{Primary: tcpSrv.Addr()}})
	if err != nil {
		fatal(err)
	}
	source := clock.NewSystemSource()
	srv, err := semel.NewServer(semel.ServerOptions{
		Addr:                tcpSrv.Addr(),
		Shard:               0,
		Primary:             true,
		Backend:             storage.NewDRAM(),
		Net:                 transport.NewTCPClient(),
		Dir:                 dir,
		Clock:               clock.NewPerfect(source, 1<<20),
		LeaseDuration:       -1,
		AntiEntropyInterval: -1,
		SerialReads:         serialReads,
	})
	if err != nil {
		fatal(err)
	}
	handler.set(srv)
	cliNet := transport.NewTCPClientOpts(transport.TCPClientOptions{ForceGob: forceGob})
	defer func() {
		srv.Close()
		tcpSrv.Close()
		cliNet.Close()
	}()

	const keys = 1024
	const perCall = 16
	ctx := context.Background()
	setup := semel.NewClient(clock.NewPerfect(source, 99), cliNet, dir)
	val := make([]byte, 64)
	for i := 0; i < keys; i++ {
		if _, err := setup.Put(ctx, []byte(fmt.Sprintf("k%d", i)), val); err != nil {
			fatal(err)
		}
	}
	var (
		ops atomic.Int64
		wg  sync.WaitGroup
	)
	warmEnd := time.Now().Add(500 * time.Millisecond)
	start := warmEnd
	deadline := start.Add(dur)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := semel.NewClient(clock.NewPerfect(source, uint32(200+w)), cliNet, dir)
			batch := make([][]byte, perCall)
			for i := 0; time.Now().Before(deadline); i++ {
				for j := range batch {
					batch[j] = []byte(fmt.Sprintf("k%d", (i*perCall+j*61+w*131)%keys))
				}
				if _, err := cl.MultiGet(ctx, batch); err != nil {
					fatal(fmt.Errorf("tcp multiget: %w", err))
				}
				if time.Now().After(warmEnd) {
					ops.Add(perCall)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	snap := srv.Metrics().Snapshot()
	var p50, p95 float64
	if h, ok := snap.Hists[`semel_serve_ns{op="multiget"}`]; ok {
		p50, p95 = float64(h.Quantile(0.50))/1e3, float64(h.Quantile(0.95))/1e3
	}
	notes := fmt.Sprintf("%d keys per call, parallel key fan-out, DRAM over loopback TCP", perCall)
	if serialReads {
		notes = fmt.Sprintf("%d keys per call, serial per-key reads (baseline), DRAM over loopback TCP", perCall)
	}
	if forceGob {
		notes += ", gob fallback frames forced (codec baseline)"
	}
	return result{
		Name:        name,
		Concurrency: conc,
		Ops:         ops.Load(),
		OpsPerSec:   float64(ops.Load()) / elapsed.Seconds(),
		P50Micros:   p50,
		P95Micros:   p95,
		Notes:       notes,
	}
}

// flashPutOptions is the end-to-end configuration: real flash program
// sleeps and a data-center latency model, so queueing is physical. The
// in-process bus delivers every message concurrently at zero CPU cost, so
// message-count amortization cannot pay here; the batcher gets a wide
// dispatch window (Workers) so it does not cap replication parallelism
// below what the unbatched path enjoys.
func flashPutOptions(disableBatch bool) core.ClusterOptions {
	return core.ClusterOptions{
		Shards:          1,
		Replicas:        3,
		Backend:         core.BackendMFTL,
		Geometry:        benchGeometry(),
		RealFlashTiming: true,
		Latency:         transport.DataCenterLatency,
		LeaseDuration:   -1,
		// Anti-entropy pulls a full-store dump; with real flash sleeps that
		// is seconds of device time stolen from the measured window.
		AntiEntropyInterval: -1,
		// MaxOps matches the channel count so one batch's backup programs
		// complete in a single parallel wave instead of convoying behind
		// per-channel queueing and staggered pack timers.
		ReplBatch: semel.BatchOptions{Disabled: disableBatch, Workers: 64, MaxOps: benchGeometry().Channels},
		Seed:      7,
	}
}

// walPutOptions pits the same DRAM bus cluster with and without a durable
// log: the only difference between the pair is the WAL append + group fsync
// on every acknowledged operation, so the synced/unsynced ratio is the
// honest price of crash durability. Checkpoints are pushed out far enough
// that none lands inside the measured window.
func walPutOptions(walRoot string) core.ClusterOptions {
	return core.ClusterOptions{
		Shards:              1,
		Replicas:            3,
		Backend:             core.BackendDRAM,
		LeaseDuration:       -1,
		AntiEntropyInterval: -1,
		WALRoot:             walRoot,
		CheckpointEvery:     1 << 20,
		Seed:                7,
	}
}

// resiliencePutOptions pits the same DRAM bus cluster with and without the
// resilience layer. Uncontended, admission control never sheds: the on/off
// ratio is the pure per-request price of the inflight accounting and
// priority classification on the hot path.
func resiliencePutOptions(on bool) core.ClusterOptions {
	opt := core.ClusterOptions{
		Shards:              1,
		Replicas:            3,
		Backend:             core.BackendDRAM,
		LeaseDuration:       -1,
		AntiEntropyInterval: -1,
		Seed:                7,
	}
	if on {
		opt.Resilience = &resilience.Options{}
	}
	return opt
}

// benchGeometry is a 64 MiB 8-channel device: big enough that a multi-second
// write run never hits garbage-collection pressure, wide enough that channel
// parallelism is real.
func benchGeometry() flash.Geometry {
	return flash.Geometry{Channels: 8, BlocksPerChannel: 64, PagesPerBlock: 32, PageSize: 4096}
}

func runPut(name string, opt core.ClusterOptions, conc int, dur time.Duration, notes string) result {
	c, err := core.NewCluster(opt)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	var (
		ops atomic.Int64
		wg  sync.WaitGroup
	)
	val := make([]byte, 64)
	start := time.Now()
	deadline := start.Add(dur)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := c.NewSemelClient(uint32(100 + w))
			ctx := context.Background()
			for i := 0; time.Now().Before(deadline); i++ {
				key := []byte(fmt.Sprintf("c%d-k%d", w, i%256))
				if _, err := cl.Put(ctx, key, val); err != nil {
					fatal(fmt.Errorf("put: %w", err))
				}
				ops.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	p50, p95 := latencies(c, `semel_serve_ns{op="put"}`)
	if *debug {
		dumpSnapshot(c)
	}
	return result{
		Name:        name,
		Concurrency: conc,
		Ops:         ops.Load(),
		OpsPerSec:   float64(ops.Load()) / elapsed.Seconds(),
		P50Micros:   p50,
		P95Micros:   p95,
		Notes:       notes,
	}
}

func runMultiGet(name string, serialReads bool, conc int, dur time.Duration) result {
	c, err := core.NewCluster(core.ClusterOptions{
		Shards:              1,
		Replicas:            1,
		Backend:             core.BackendMFTL,
		Geometry:            benchGeometry(),
		RealFlashTiming:     true,
		LeaseDuration:       -1,
		AntiEntropyInterval: -1,
		SerialReads:         serialReads,
		Seed:                7,
	})
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	const keys = 1024
	const perCall = 16
	setup := c.NewSemelClient(99)
	ctx := context.Background()
	val := make([]byte, 64)
	for i := 0; i < keys; i++ {
		if _, err := setup.Put(ctx, []byte(fmt.Sprintf("k%d", i)), val); err != nil {
			fatal(err)
		}
	}
	var (
		ops atomic.Int64
		wg  sync.WaitGroup
	)
	start := time.Now()
	deadline := start.Add(dur)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := c.NewSemelClient(uint32(200 + w))
			for i := 0; time.Now().Before(deadline); i++ {
				batch := make([][]byte, perCall)
				for j := range batch {
					batch[j] = []byte(fmt.Sprintf("k%d", (i*perCall+j*61+w*131)%keys))
				}
				if _, err := cl.MultiGet(ctx, batch); err != nil {
					fatal(fmt.Errorf("multiget: %w", err))
				}
				ops.Add(perCall)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	p50, p95 := latencies(c, `semel_serve_ns{op="multiget"}`)
	notes := fmt.Sprintf("%d keys per call, parallel key fan-out, RealSleeper reads", perCall)
	if serialReads {
		notes = fmt.Sprintf("%d keys per call, serial per-key reads (baseline), RealSleeper reads", perCall)
	}
	if *debug {
		dumpSnapshot(c)
	}
	return result{
		Name:        name,
		Concurrency: conc,
		Ops:         ops.Load(),
		OpsPerSec:   float64(ops.Load()) / elapsed.Seconds(),
		P50Micros:   p50,
		P95Micros:   p95,
		Notes:       notes,
	}
}

// latencies pulls p50/p95 (µs) for one histogram from the cluster-wide
// merged snapshot.
func latencies(c *core.Cluster, hist string) (p50, p95 float64) {
	snap := c.MergedSnapshot()
	h, ok := snap.Hists[hist]
	if !ok {
		return 0, 0
	}
	return float64(h.Quantile(0.50)) / 1e3, float64(h.Quantile(0.95)) / 1e3
}

func dumpSnapshot(c *core.Cluster) {
	snap := c.MergedSnapshot()
	names := make([]string, 0, len(snap.Hists))
	for n := range snap.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Hists[n]
		if h.Count == 0 {
			continue
		}
		fmt.Printf("    H %-50s n=%-8d p50=%-10d p95=%d\n", n, h.Count, h.Quantile(0.50), h.Quantile(0.95))
	}
	names = names[:0]
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if v := snap.Counters[n]; v != 0 {
			fmt.Printf("    C %-50s %d\n", n, v)
		}
	}
}
