package main

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"

	"repro/internal/clock"
	"repro/internal/wire"
)

// codecMicrobenchmarks measures message-level round trips (encode one
// message, decode it back) for the two hot-path messages the wire codec was
// built around, in three flavors:
//
//   - *-v1: wire.Codec Append into a reused buffer + Decode. This is the
//     per-frame work the transport does on the hot path.
//   - *-gob: a fresh gob encoder/decoder per message, i.e. the cost of gob
//     as a stateless message codec (type descriptors retransmitted every
//     time). This is the apples-to-apples baseline for a standalone frame.
//   - *-gob-stream: one persistent gob encoder/decoder pair, the transport's
//     actual fallback (descriptors amortized over a connection's lifetime).
//
// Results ride the same JSON trajectory as the scenario benchmarks, with
// ns/op, B/op and allocs/op from testing.Benchmark + ReportAllocs.
func codecMicrobenchmarks() []result {
	ts := clock.Timestamp{Ticks: 123456789, Client: 7}
	getReq := wire.GetRequest{Key: []byte("user:12345:profile"), At: ts}
	repl := wire.ReplicateData{Ops: make([]wire.DataOp, 16)}
	for i := range repl.Ops {
		repl.Ops[i] = wire.DataOp{
			Key:     []byte(fmt.Sprintf("user:%05d:profile", i)),
			Val:     bytes.Repeat([]byte{byte(i)}, 64),
			Version: clock.Timestamp{Ticks: ts.Ticks + int64(i), Client: ts.Client},
		}
	}
	msgs := []struct {
		name string
		msg  any
	}{
		{"codec/getrequest", getReq},
		{"codec/replicate16", repl},
	}
	var out []result
	for _, m := range msgs {
		out = append(out,
			microResult(m.name+"-v1", "wire codec v1 Append+Decode, reused buffer", benchV1(m.msg)),
			microResult(m.name+"-gob", "fresh gob encoder/decoder per message (stateless baseline)", benchGobFresh(m.msg)),
			microResult(m.name+"-gob-stream", "persistent gob stream pair (transport fallback path)", benchGobStream(m.msg)),
		)
	}
	return out
}

func microResult(name, notes string, br testing.BenchmarkResult) result {
	return result{
		Name:        name,
		Concurrency: 1,
		Ops:         int64(br.N),
		OpsPerSec:   1e9 / float64(br.NsPerOp()),
		NsPerOp:     float64(br.NsPerOp()),
		BytesPerOp:  br.AllocedBytesPerOp(),
		AllocsPerOp: br.AllocsPerOp(),
		Notes:       notes,
	}
}

func benchV1(msg any) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var buf []byte
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = wire.Codec.Append(buf[:0], msg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := wire.Codec.Decode(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchGobFresh(msg any) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		for i := 0; i < b.N; i++ {
			buf.Reset()
			holder := msg
			if err := gob.NewEncoder(&buf).Encode(&holder); err != nil {
				b.Fatal(err)
			}
			var out any
			if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchGobStream(msg any) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		dec := gob.NewDecoder(&buf)
		for i := 0; i < b.N; i++ {
			holder := msg
			if err := enc.Encode(&holder); err != nil {
				b.Fatal(err)
			}
			var out any
			if err := dec.Decode(&out); err != nil {
				b.Fatal(err)
			}
		}
	})
}
