// Command compare joins two bench trajectory files (cmd/bench JSON output)
// by scenario name and prints a benchstat-style before/after table: ops/sec
// old → new with the speedup ratio, p50 latency movement, and allocation
// deltas for the codec microbenchmark rows.
//
//	go run ./cmd/bench/compare BENCH_2.json BENCH_7.json
//
// Rows present in only one file are listed separately, so renamed or newly
// added scenarios are visible rather than silently dropped.
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

type result struct {
	Name        string  `json:"name"`
	Concurrency int     `json:"concurrency"`
	Ops         int64   `json:"ops"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50Micros   float64 `json:"p50_us"`
	P95Micros   float64 `json:"p95_us"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	Notes       string  `json:"notes,omitempty"`
}

type report struct {
	Generated   string   `json:"generated"`
	Duration    string   `json:"duration_per_scenario"`
	Environment string   `json:"environment"`
	Results     []result `json:"results"`
}

func load(path string) report {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return rep
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compare:", err)
	os.Exit(1)
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: compare OLD.json NEW.json")
		os.Exit(2)
	}
	oldRep, newRep := load(os.Args[1]), load(os.Args[2])
	oldBy := make(map[string]result, len(oldRep.Results))
	for _, r := range oldRep.Results {
		oldBy[r.Name] = r
	}
	newBy := make(map[string]result, len(newRep.Results))
	for _, r := range newRep.Results {
		newBy[r.Name] = r
	}

	fmt.Printf("old: %s (%s)\n", os.Args[1], oldRep.Generated)
	fmt.Printf("new: %s (%s)\n\n", os.Args[2], newRep.Generated)

	fmt.Printf("%-26s %12s %12s %8s %10s %10s\n", "scenario", "old ops/s", "new ops/s", "ratio", "old p50µs", "new p50µs")
	var onlyOld, onlyNew []string
	for _, r := range oldRep.Results {
		n, ok := newBy[r.Name]
		if !ok {
			onlyOld = append(onlyOld, r.Name)
			continue
		}
		ratio := 0.0
		if r.OpsPerSec > 0 {
			ratio = n.OpsPerSec / r.OpsPerSec
		}
		fmt.Printf("%-26s %12.0f %12.0f %7.2fx %10.0f %10.0f\n", r.Name, r.OpsPerSec, n.OpsPerSec, ratio, r.P50Micros, n.P50Micros)
		if r.AllocsPerOp > 0 || n.AllocsPerOp > 0 {
			fmt.Printf("%-26s %12d %12d          allocs/op\n", "", r.AllocsPerOp, n.AllocsPerOp)
		}
	}
	for _, r := range newRep.Results {
		if _, ok := oldBy[r.Name]; !ok {
			onlyNew = append(onlyNew, r.Name)
		}
	}
	if len(onlyOld) > 0 {
		fmt.Printf("\nonly in %s:\n", os.Args[1])
		for _, n := range onlyOld {
			fmt.Printf("  %s\n", n)
		}
	}
	if len(onlyNew) > 0 {
		fmt.Printf("\nonly in %s:\n", os.Args[2])
		for _, r := range onlyNew {
			n := newBy[r]
			if n.AllocsPerOp > 0 || n.NsPerOp > 0 {
				fmt.Printf("  %-24s %12.0f ops/s  %8.0f ns/op  %6d B/op  %4d allocs/op\n", r, n.OpsPerSec, n.NsPerOp, n.BytesPerOp, n.AllocsPerOp)
			} else {
				fmt.Printf("  %-24s %12.0f ops/s  p50 %.0fµs\n", r, n.OpsPerSec, n.P50Micros)
			}
		}
	}
}
