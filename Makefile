GO ?= go

.PHONY: all build vet test race check cover audit stress overload crash bench benchquick benchcmp benchall

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# cover enforces a statement-coverage floor on the observability, wire
# codec, transport framing, fault-injection, and history-checking layers —
# the packages whose regressions (an unparseable /metrics line, a byte moved
# in the frozen wire format, a checker that stops finding cycles) otherwise
# slip through unexercised.
COVER_PKGS = ./internal/obs ./internal/wire ./internal/faults ./internal/check ./internal/audit ./internal/transport ./internal/wal ./internal/resilience
COVER_MIN  = 70
cover:
	$(GO) test -coverprofile=cover.out $(COVER_PKGS)
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min=$(COVER_MIN) 'BEGIN { exit (t+0 < min) ? 1 : 0 }' || \
		{ echo "coverage $$total% below floor $(COVER_MIN)%"; exit 1; }

# audit runs the online-audit gate under the race detector: chaos runs with
# the streaming auditor attached must stay silent (zero convictions, zero
# ε violations), a mutated cluster must be convicted online, the streaming
# verdict must match the offline checker across the seed sweep, and cluster
# teardown must not leak a single goroutine (flusher, batcher, tickers).
audit:
	CHAOS_SEED=$(CHAOS_SEED) CHAOS_ROUNDS=$(CHAOS_ROUNDS) \
		$(GO) test -race -timeout 30m -run 'TestAudit' -v ./internal/core/ ./internal/audit/

# check is the PR verify gate: everything must build, vet clean, pass the
# full test suite under the race detector (which includes a small
# 2-seed × 3-profile chaos sweep via TestStressChaosSweep and the online
# audit suite), hold the coverage floor, and survive the crash/durability
# gate.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) cover
	$(MAKE) crash

# stress is the seeded chaos sweep: CHAOS_ROUNDS seeds (starting at
# CHAOS_SEED) × {NTP, PTP-HW, DTP} clock profiles, each run under the race
# detector with fault injection (drops, duplicates, delays, partitions,
# crashes, clock steps) and the serializability checker on the recorded
# history. A failing seed prints its replay command and chaos schedule;
# replay with CHAOS_SEED=<seed> CHAOS_ROUNDS=1 make stress.
CHAOS_SEED   ?= 1
CHAOS_ROUNDS ?= 20
stress:
	CHAOS_SEED=$(CHAOS_SEED) CHAOS_ROUNDS=$(CHAOS_ROUNDS) \
		$(GO) test -race -timeout 30m -run 'TestStress|TestAudit|TestResilienceChaosAudit' -v ./internal/core/
	$(MAKE) overload

# overload is the graceful-degradation gate: a 4× open-loop overload against
# a cluster with one deliberately degraded replica must keep goodput at or
# above 70% of the pre-overload baseline, with admission control shedding
# reads before prepares and never shedding control traffic, and the circuit
# breakers must close again once the overload stops.
overload:
	OVERLOAD_GATE=1 $(GO) test -race -timeout 10m -count=1 \
		-run 'TestOverloadGoodputCurve|TestBreakerRecovery' -v ./internal/core/

# crash is the durability gate: the whole internal/wal suite under -race —
# crash-point sweeps at every byte boundary, torn tails, flipped bits, and
# the FuzzWALReplay seed corpus — then the cold-restart harness
# (whole-shard amnesia kill, zero lost acked writes), the fsync-skip
# mutation conviction, and a small kill-enabled chaos sweep that
# amnesia-kills and recovers every replica while the serializability
# checker and the lost-ack oracle watch.
crash:
	$(GO) test -race ./internal/wal/
	CHAOS_SEED=$(CHAOS_SEED) CHAOS_ROUNDS=2 \
		$(GO) test -race -timeout 30m -run 'TestDurabilityColdRestart|TestStressWALFsyncMutationConvicted|TestReplicateDataDupAfterRecoveryIdempotent|TestStressKillChaos' -v ./internal/core/

# bench runs the write/read-path perf scenarios plus the codec
# microbenchmarks and records the trajectory (ops/sec + p50/p95 from the obs
# histograms, allocs/op for the micros) in BENCH_9.json. Compare against the
# previous trajectory with `make benchcmp`.
bench:
	$(GO) run ./cmd/bench -out BENCH_9.json

# benchquick is the short iteration loop: 1s per scenario, put/multiget TCP
# scenarios only (the ones the wire codec moves), result left in /tmp so the
# checked-in trajectory files stay stable. It also runs the three overhead
# gates: the per-txn stage ledger plus a live tsdb sampler must cost < 3%
# of bus transaction throughput versus a fully disabled cluster, the WAL's
# log-before-ack path must keep at least 20% of the WAL-off transaction
# throughput, and the idle resilience layer (admission + breakers + retry
# budget + hedging) must account to < 2% of a bus transaction.
benchquick:
	$(GO) run ./cmd/bench -dur 1s -only put/,multiget/ -out /tmp/benchquick.json
	OBS_OVERHEAD_GATE=1 $(GO) test -count=1 -run TestStageOverheadGate -v ./internal/core/
	WAL_OVERHEAD_GATE=1 $(GO) test -count=1 -run TestWALOverheadGate -v ./internal/core/
	RESILIENCE_OVERHEAD_GATE=1 $(GO) test -count=1 -run TestResilienceOverheadGate -v ./internal/core/

# benchcmp prints a benchstat-style before/after table between the last two
# recorded trajectories.
OLD_BENCH ?= BENCH_7.json
NEW_BENCH ?= BENCH_9.json
benchcmp:
	$(GO) run ./cmd/bench/compare $(OLD_BENCH) $(NEW_BENCH)

# benchall runs every go test benchmark (paper tables/figures + micro).
benchall:
	$(GO) test -bench=. -benchmem
