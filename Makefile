GO ?= go

.PHONY: all build vet test race check bench benchall

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the PR verify gate: everything must build, vet clean, and pass
# the full test suite under the race detector.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

# bench runs the write/read-path perf scenarios and records the trajectory
# (ops/sec + p50/p95 from the obs histograms) in BENCH_2.json.
bench:
	$(GO) run ./cmd/bench -out BENCH_2.json

# benchall runs every go test benchmark (paper tables/figures + micro).
benchall:
	$(GO) test -bench=. -benchmem
