GO ?= go

.PHONY: all build vet test race check cover bench benchall

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# cover enforces a statement-coverage floor on the observability and wire
# layers — the packages whose regressions (an unparseable /metrics line, a
# field dropped from a gob envelope) otherwise slip through unexercised.
COVER_PKGS = ./internal/obs ./internal/wire
COVER_MIN  = 70
cover:
	$(GO) test -coverprofile=cover.out $(COVER_PKGS)
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v min=$(COVER_MIN) 'BEGIN { exit (t+0 < min) ? 1 : 0 }' || \
		{ echo "coverage $$total% below floor $(COVER_MIN)%"; exit 1; }

# check is the PR verify gate: everything must build, vet clean, pass the
# full test suite under the race detector, and hold the coverage floor.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) cover

# bench runs the write/read-path perf scenarios and records the trajectory
# (ops/sec + p50/p95 from the obs histograms) in BENCH_2.json.
bench:
	$(GO) run ./cmd/bench -out BENCH_2.json

# benchall runs every go test benchmark (paper tables/figures + micro).
benchall:
	$(GO) test -bench=. -benchmem
