GO ?= go

.PHONY: all build vet test race check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the PR verify gate: everything must build, vet clean, and pass
# the full test suite under the race detector.
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem
